"""Unit tests for protection (disjoint-pair) routing."""

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.exceptions import NoPathError
from repro.topology.reference import nsfnet_network
from repro.wdm.protection import route_disjoint_pair


def two_route_net() -> WDMNetwork:
    net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.2))
    for node in "sabt":
        net.add_node(node)
    net.add_link("s", "a", {0: 1.0}); net.add_link("a", "t", {0: 1.0})
    net.add_link("s", "b", {0: 3.0}); net.add_link("b", "t", {0: 3.0})
    return net


class TestLinkDisjoint:
    def test_pair_is_fiber_disjoint(self):
        pair = route_disjoint_pair(two_route_net(), "s", "t")
        assert not pair.shares_links()
        assert not pair.shares_channels()
        assert pair.working.total_cost <= pair.backup.total_cost

    def test_working_is_the_optimum(self):
        pair = route_disjoint_pair(two_route_net(), "s", "t")
        assert pair.working.nodes() == ["s", "a", "t"]
        assert pair.backup.nodes() == ["s", "b", "t"]
        assert pair.total_cost == pytest.approx(2.0 + 6.0)

    def test_nsfnet_pairs_exist(self):
        net = nsfnet_network(num_wavelengths=2)
        pair = route_disjoint_pair(net, "WA", "NY")
        assert not pair.shares_links()
        pair.working.validate(net)
        pair.backup.validate(net)

    def test_no_second_route_raises(self):
        net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.1))
        net.add_nodes(["s", "m", "t"])
        net.add_link("s", "m", {0: 1.0, 1: 1.0})
        net.add_link("m", "t", {0: 1.0, 1: 1.0})
        # Only one physical route: link-disjoint backup is impossible.
        with pytest.raises(NoPathError):
            route_disjoint_pair(net, "s", "t", disjointness="link")

    def test_bidirectional_fiber_counts_as_one(self):
        """Fiber disjointness removes both directions of a cut fiber."""
        net = WDMNetwork(num_wavelengths=1, default_conversion=FixedCostConversion(0.0))
        net.add_nodes(["s", "t"])
        net.add_link("s", "t", {0: 1.0})
        net.add_link("t", "s", {0: 1.0})
        with pytest.raises(NoPathError):
            route_disjoint_pair(net, "s", "t", disjointness="link")


class TestChannelDisjoint:
    def test_same_fiber_different_wavelength_allowed(self):
        net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.1))
        net.add_nodes(["s", "m", "t"])
        net.add_link("s", "m", {0: 1.0, 1: 2.0})
        net.add_link("m", "t", {0: 1.0, 1: 2.0})
        pair = route_disjoint_pair(net, "s", "t", disjointness="channel")
        assert not pair.shares_channels()
        assert pair.shares_links()  # same fibers, different λ

    def test_channel_exhaustion_raises(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=FixedCostConversion(0.0))
        net.add_nodes(["s", "t"])
        net.add_link("s", "t", {0: 1.0})
        with pytest.raises(NoPathError):
            route_disjoint_pair(net, "s", "t", disjointness="channel")


class TestValidation:
    def test_unknown_disjointness(self):
        with pytest.raises(ValueError):
            route_disjoint_pair(two_route_net(), "s", "t", disjointness="node")

    def test_backup_priced_on_full_network(self):
        pair = route_disjoint_pair(two_route_net(), "s", "t")
        assert pair.backup.evaluate_cost(two_route_net()) == pytest.approx(
            pair.backup.total_cost
        )
