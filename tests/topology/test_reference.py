"""Unit tests for the fixed reference networks."""

import pytest

from repro.core.routing import LiangShenRouter
from repro.topology.reference import (
    ARPANET_FIBERS,
    COST239_FIBERS,
    NSFNET_FIBERS,
    arpanet_network,
    cost239_network,
    nsfnet_network,
    paper_figure1_network,
)


class TestPaperExampleOptions:
    def test_defaults(self):
        net = paper_figure1_network()
        assert net.num_wavelengths == 4
        assert net.conversion_cost(1, 0, 1) == 0.5

    def test_custom_costs(self):
        net = paper_figure1_network(link_cost=2.0, conversion_cost=0.25)
        assert net.link_cost(1, 2, 0) == 2.0
        assert net.conversion_cost(5, 0, 1) == 0.25

    def test_forbidden_conversion_toggle(self):
        strict = paper_figure1_network()
        relaxed = paper_figure1_network(forbid_node3_l2_to_l3=False)
        assert strict.conversion_cost(3, 1, 2) == float("inf")
        assert relaxed.conversion_cost(3, 1, 2) == 0.5


class TestNSFNET:
    def test_shape(self):
        net = nsfnet_network()
        assert net.num_nodes == 14
        assert net.num_links == 2 * len(NSFNET_FIBERS)

    def test_degree_bound(self):
        net = nsfnet_network()
        assert net.max_degree <= 4

    def test_fully_routable(self):
        net = nsfnet_network(num_wavelengths=2)
        router = LiangShenRouter(net)
        nodes = net.nodes()
        for target in nodes[1:]:
            assert router.route(nodes[0], target).cost > 0

    def test_wavelength_count_configurable(self):
        assert nsfnet_network(num_wavelengths=16).num_wavelengths == 16


class TestCOST239:
    def test_shape(self):
        net = cost239_network()
        assert net.num_nodes == 11
        assert net.num_links == 2 * len(COST239_FIBERS)

    def test_city_names(self):
        net = cost239_network()
        assert net.has_node("London")
        assert net.has_node("Vienna")

    def test_denser_than_nsfnet(self):
        """COST239 is the dense-mesh European reference: higher average
        degree than NSFNET."""
        cost = cost239_network()
        nsf = nsfnet_network()
        assert cost.num_links / cost.num_nodes > nsf.num_links / nsf.num_nodes

    def test_fully_routable(self):
        net = cost239_network(num_wavelengths=2)
        router = LiangShenRouter(net)
        for target in net.nodes()[1:]:
            router.route(net.nodes()[0], target)

    def test_survivable_pairs_exist_everywhere(self):
        """The dense mesh supports fiber-disjoint pairs for every pair."""
        from repro.wdm.protection import route_disjoint_pair

        net = cost239_network(num_wavelengths=2)
        pair = route_disjoint_pair(net, "London", "Vienna")
        assert not pair.shares_links()


class TestARPANET:
    def test_shape(self):
        net = arpanet_network()
        assert net.num_nodes == 20
        assert net.num_links == 2 * len(ARPANET_FIBERS)

    def test_degree_bound(self):
        assert arpanet_network().max_degree <= 4

    def test_routable_across_the_span(self):
        net = arpanet_network(num_wavelengths=2)
        result = LiangShenRouter(net).route(0, 19)
        assert result.path.num_hops >= 4  # it is a wide network
