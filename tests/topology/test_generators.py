"""Unit tests for the topology generators."""

import pytest

from repro.core.conversion import NoConversion
from repro.topology.generators import (
    build_network,
    complete_network,
    degree_bounded_network,
    grid_network,
    line_network,
    random_sparse_network,
    ring_network,
    torus_network,
    waxman_network,
)
from repro.topology.wavelength_assign import bounded_random_wavelengths


def strongly_connected(net) -> bool:
    """BFS both ways from the first node over the physical digraph."""
    nodes = net.nodes()
    if not nodes:
        return True

    def reach(start, forward=True):
        seen = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            adjacent = net.successors(v) if forward else net.predecessors(v)
            for u in adjacent:
                if u not in seen:
                    seen.add(u)
                    frontier.append(u)
        return seen

    return len(reach(nodes[0], True)) == len(nodes) == len(reach(nodes[0], False))


class TestRing:
    def test_shape(self):
        net = ring_network(10, 2)
        assert net.num_nodes == 10
        assert net.num_links == 20  # bidirectional
        assert net.max_degree == 2

    def test_unidirectional(self):
        net = ring_network(10, 2, bidirectional=False)
        assert net.num_links == 10
        assert net.max_degree == 1

    def test_connected(self):
        assert strongly_connected(ring_network(7, 1))

    def test_too_small(self):
        with pytest.raises(ValueError):
            ring_network(1, 1)


class TestLine:
    def test_shape(self):
        net = line_network(5, 2)
        assert net.num_links == 8
        assert net.in_degree(0) == 1
        assert net.in_degree(2) == 2

    def test_unidirectional_not_strongly_connected(self):
        net = line_network(4, 1, bidirectional=False)
        assert not strongly_connected(net)


class TestGridAndTorus:
    def test_grid_shape(self):
        net = grid_network(3, 4, 2)
        assert net.num_nodes == 12
        # Undirected mesh edges: 3*(4-1) + 4*(3-1) = 17, bidirected = 34.
        assert net.num_links == 34
        assert net.max_degree <= 4

    def test_grid_node_labels(self):
        net = grid_network(2, 2, 1)
        assert set(net.nodes()) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_torus_regular_degree(self):
        net = torus_network(4, 4, 1)
        assert all(net.out_degree(v) == 4 for v in net.nodes())

    def test_torus_connected(self):
        assert strongly_connected(torus_network(3, 3, 1))


class TestDegreeBounded:
    @pytest.mark.parametrize("seed", range(5))
    def test_degree_bound_respected(self, seed):
        net = degree_bounded_network(40, 3, max_degree=4, seed=seed)
        # Physical undirected degree <= 4 -> directed in/out degree <= 4.
        assert net.max_degree <= 4

    @pytest.mark.parametrize("seed", range(5))
    def test_strongly_connected(self, seed):
        assert strongly_connected(degree_bounded_network(30, 2, seed=seed))

    def test_sparse(self):
        net = degree_bounded_network(100, 2, max_degree=4, seed=0)
        assert net.num_links <= 4 * 100  # m = O(n)

    def test_reproducible(self):
        a = degree_bounded_network(20, 2, seed=9)
        b = degree_bounded_network(20, 2, seed=9)
        assert [(l.tail, l.head) for l in a.links()] == [
            (l.tail, l.head) for l in b.links()
        ]


class TestRandomSparse:
    def test_connected_backbone(self):
        assert strongly_connected(random_sparse_network(25, 2, seed=3))

    def test_target_density(self):
        net = random_sparse_network(50, 1, average_degree=3.0, seed=1)
        assert 50 <= net.num_links <= 160

    def test_bad_average_degree(self):
        with pytest.raises(ValueError):
            random_sparse_network(10, 1, average_degree=1.0)


class TestWaxman:
    def test_connected_when_requested(self):
        assert strongly_connected(waxman_network(30, 2, seed=4))

    def test_positions_attached(self):
        net = waxman_network(10, 1, seed=0)
        assert len(net.positions) == 10
        for x, y in net.positions.values():
            assert 0 <= x <= 1 and 0 <= y <= 1

    def test_higher_alpha_more_links(self):
        sparse = waxman_network(40, 1, alpha=0.05, seed=8, connect=False)
        dense = waxman_network(40, 1, alpha=0.9, seed=8, connect=False)
        assert dense.num_links > sparse.num_links

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            waxman_network(10, 1, beta=0.0)


class TestComplete:
    def test_all_arcs(self):
        net = complete_network(6, 1)
        assert net.num_links == 30
        assert net.max_degree == 5


class TestBuildNetwork:
    def test_policies_applied(self):
        net = build_network(
            ["x", "y"],
            [("x", "y")],
            num_wavelengths=8,
            wavelength_policy=bounded_random_wavelengths(8, 2),
            seed=1,
        )
        assert 1 <= len(net.available_wavelengths("x", "y")) <= 2

    def test_conversion_model_shared(self):
        net = build_network(
            ["x", "y"], [("x", "y")], num_wavelengths=2, conversion=NoConversion()
        )
        assert net.conversion_cost("x", 0, 1) == float("inf")

    def test_default_satisfies_restriction2(self):
        from repro.core.restrictions import check_restriction2

        net = ring_network(6, 3)
        holds, _, _ = check_restriction2(net)
        assert holds
