"""Unit tests for demand-matrix generators."""

import pytest

from repro.topology.traffic_matrices import gravity_demands, uniform_demands


class TestUniform:
    def test_probability_extremes(self):
        nodes = list(range(5))
        assert uniform_demands(nodes, probability=0.0) == []
        full = uniform_demands(nodes, probability=1.0)
        assert len(full) == 20  # all ordered pairs

    def test_counts_in_range(self):
        demands = uniform_demands(list(range(6)), probability=1.0, max_count=3, seed=2)
        assert all(1 <= d.count <= 3 for d in demands)

    def test_seeded(self):
        a = uniform_demands(list(range(6)), seed=4)
        b = uniform_demands(list(range(6)), seed=4)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_demands([1, 2], probability=1.5)


class TestGravity:
    def test_total_circuits_approximate(self):
        demands = gravity_demands(list(range(8)), total_circuits=100, seed=1)
        total = sum(d.count for d in demands)
        assert 80 <= total <= 120  # stochastic rounding wiggle

    def test_heavier_nodes_attract_more(self):
        nodes = ["small", "big", "other"]
        weights = {"small": 1.0, "big": 100.0, "other": 1.0}
        demands = gravity_demands(nodes, 200, weights=weights, seed=3)
        touching_big = sum(
            d.count for d in demands if "big" in (d.source, d.target)
        )
        not_touching_big = sum(
            d.count for d in demands if "big" not in (d.source, d.target)
        )
        assert touching_big > 10 * max(1, not_touching_big)

    def test_no_self_demands(self):
        demands = gravity_demands(list(range(5)), 50, seed=0)
        assert all(d.source != d.target for d in demands)

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError):
            gravity_demands(["a", "b"], 10, weights={"a": 1.0})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            gravity_demands(["a", "b"], 10, weights={"a": 1.0, "b": 0.0})

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            gravity_demands(["only"], 10)

    def test_feeds_the_planner(self):
        from repro.topology.reference import nsfnet_network
        from repro.wdm.planner import StaticPlanner

        net = nsfnet_network(num_wavelengths=6)
        demands = gravity_demands(net.nodes(), 20, seed=7)
        plan = StaticPlanner(net).plan(demands)
        assert plan.circuits_carried > 0
