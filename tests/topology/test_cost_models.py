"""Unit tests for link-cost policies and conversion factories."""

import random

import pytest

from repro.core.conversion import FixedCostConversion, MatrixConversion
from repro.topology.cost_models import (
    distance_scaled_costs,
    random_costs,
    random_matrix_conversion,
    restriction2_conversion,
    uniform_costs,
    wavelength_dependent_costs,
)


class TestLinkCostPolicies:
    def test_uniform(self):
        policy = uniform_costs(2.5)
        assert policy(random.Random(0), "a", "b", 3) == 2.5

    def test_random_range(self):
        policy = random_costs(2.0, 4.0)
        rng = random.Random(1)
        values = [policy(rng, "a", "b", 0) for _ in range(100)]
        assert all(2.0 <= v <= 4.0 for v in values)
        assert max(values) - min(values) > 0.5  # actually random

    def test_random_invalid_range(self):
        with pytest.raises(ValueError):
            random_costs(5.0, 1.0)

    def test_distance_scaled(self):
        positions = {"a": (0.0, 0.0), "b": (3.0, 4.0)}
        policy = distance_scaled_costs(positions, scale=2.0)
        assert policy(random.Random(0), "a", "b", 0) == pytest.approx(10.0)

    def test_wavelength_dependent(self):
        policy = wavelength_dependent_costs(base=1.0, per_wavelength=0.5)
        assert policy(random.Random(0), "a", "b", 0) == 1.0
        assert policy(random.Random(0), "a", "b", 4) == 3.0


class TestConversionFactories:
    def test_restriction2_under_floor(self):
        model = restriction2_conversion(min_link_cost=2.0, fraction=0.5)
        assert isinstance(model, FixedCostConversion)
        assert model.cost(0, 1) == pytest.approx(1.0)
        assert model.cost(0, 1) < 2.0

    def test_restriction2_invalid_fraction(self):
        with pytest.raises(ValueError):
            restriction2_conversion(2.0, fraction=1.0)

    def test_restriction2_zero_floor(self):
        with pytest.raises(ValueError):
            restriction2_conversion(0.0)

    def test_random_matrix_shape(self):
        rng = random.Random(2)
        model = random_matrix_conversion(rng, 4, support_probability=1.0)
        assert isinstance(model, MatrixConversion)
        for p in range(4):
            for q in range(4):
                if p != q:
                    assert model.supports(p, q)

    def test_random_matrix_sparsity(self):
        rng = random.Random(3)
        model = random_matrix_conversion(rng, 6, support_probability=0.0)
        assert not any(True for _ in model.pairs())
