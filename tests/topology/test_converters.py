"""Unit tests for sparse converter placement."""

import math

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.topology.converters import place_converters, sparse_conversion_network
from repro.topology.reference import nsfnet_network


class TestPlaceConverters:
    def test_converters_only_at_listed_nodes(self, paper_net):
        place_converters(paper_net, [3, 5], FixedCostConversion(0.25))
        assert paper_net.conversion_cost(3, 0, 1) == 0.25
        assert paper_net.conversion_cost(5, 0, 1) == 0.25
        assert paper_net.conversion_cost(1, 0, 1) == math.inf

    def test_unknown_node_rejected(self, paper_net):
        with pytest.raises(ValueError):
            place_converters(paper_net, ["ghost"], FixedCostConversion(0.1))

    def test_empty_placement_disables_all(self, paper_net):
        place_converters(paper_net, [], FixedCostConversion(0.1))
        for node in paper_net.nodes():
            assert paper_net.conversion_cost(node, 0, 1) == math.inf


class TestSparseConversion:
    def test_density_extremes(self):
        net = nsfnet_network(num_wavelengths=3)
        model = FixedCostConversion(0.3)
        dark = sparse_conversion_network(net, 0.0, model)
        full = sparse_conversion_network(net, 1.0, model)
        assert all(
            dark.conversion_cost(v, 0, 1) == math.inf for v in dark.nodes()
        )
        assert all(full.conversion_cost(v, 0, 1) == 0.3 for v in full.nodes())

    def test_density_rounding(self):
        net = nsfnet_network(num_wavelengths=2)
        half = sparse_conversion_network(net, 0.5, FixedCostConversion(0.1), seed=4)
        with_conv = sum(
            1 for v in half.nodes() if half.conversion_cost(v, 0, 1) < math.inf
        )
        assert with_conv == 7  # round(0.5 * 14)

    def test_original_untouched(self):
        net = nsfnet_network(num_wavelengths=2)
        sparse_conversion_network(net, 0.0, FixedCostConversion(0.1))
        assert net.conversion_cost("WA", 0, 1) < math.inf

    def test_seeded_reproducible(self):
        net = nsfnet_network(num_wavelengths=2)
        a = sparse_conversion_network(net, 0.5, FixedCostConversion(0.1), seed=9)
        b = sparse_conversion_network(net, 0.5, FixedCostConversion(0.1), seed=9)
        for v in net.nodes():
            assert a.conversion_cost(v, 0, 1) == b.conversion_cost(v, 0, 1)

    def test_invalid_density(self):
        net = nsfnet_network(num_wavelengths=2)
        with pytest.raises(ValueError):
            sparse_conversion_network(net, 1.5, FixedCostConversion(0.1))

    def test_more_converters_never_hurt_routability(self):
        """Optimal cost is non-increasing in converter density (same seed:
        placements are nested is NOT guaranteed, so compare to extremes)."""
        from repro.topology.wavelength_assign import bounded_random_wavelengths
        from repro.topology.generators import ring_network

        base = ring_network(
            10,
            8,
            seed=3,
            wavelength_policy=bounded_random_wavelengths(8, 2),
        )
        model = FixedCostConversion(0.2)
        dark = sparse_conversion_network(base, 0.0, model)
        full = sparse_conversion_network(base, 1.0, model)

        def cost(net):
            try:
                return LiangShenRouter(net).route(0, 5).cost
            except NoPathError:
                return math.inf

        assert cost(full) <= cost(dark)
