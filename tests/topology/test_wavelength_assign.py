"""Unit tests for wavelength-availability policies."""

import random

import pytest

from repro.topology.wavelength_assign import (
    all_wavelengths,
    bounded_random_wavelengths,
    random_wavelengths,
)


class TestAllWavelengths:
    def test_full_universe(self):
        policy = all_wavelengths(5)
        assert policy(random.Random(0), "a", "b") == {0, 1, 2, 3, 4}


class TestRandomWavelengths:
    def test_within_universe(self):
        policy = random_wavelengths(8, availability=0.5)
        rng = random.Random(1)
        for _ in range(50):
            chosen = policy(rng, "a", "b")
            assert chosen <= set(range(8))
            assert len(chosen) >= 1  # default min_size

    def test_min_size_respected(self):
        policy = random_wavelengths(8, availability=0.0, min_size=3)
        rng = random.Random(2)
        assert len(policy(rng, "a", "b")) == 3

    def test_probability_extremes(self):
        rng = random.Random(3)
        assert random_wavelengths(4, 1.0)(rng, "a", "b") == {0, 1, 2, 3}
        assert len(random_wavelengths(4, 0.0, min_size=1)(rng, "a", "b")) == 1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_wavelengths(4, 1.5)

    def test_invalid_min_size(self):
        with pytest.raises(ValueError):
            random_wavelengths(4, 0.5, min_size=5)


class TestBoundedRandom:
    def test_size_bounds(self):
        policy = bounded_random_wavelengths(100, k0=3)
        rng = random.Random(4)
        sizes = [len(policy(rng, "a", "b")) for _ in range(200)]
        assert all(1 <= s <= 3 for s in sizes)
        assert set(sizes) == {1, 2, 3}  # all sizes occur over 200 draws

    def test_members_span_large_universe(self):
        policy = bounded_random_wavelengths(1000, k0=2)
        rng = random.Random(5)
        members = set()
        for _ in range(300):
            members |= policy(rng, "a", "b")
        assert max(members) > 500  # draws reach deep into the universe

    def test_k0_must_fit_universe(self):
        with pytest.raises(ValueError):
            bounded_random_wavelengths(4, k0=5)

    def test_min_size_validation(self):
        with pytest.raises(ValueError):
            bounded_random_wavelengths(10, k0=3, min_size=4)
