"""Unit tests for markdown report rendering."""

from repro.analysis.experiments import run_all
from repro.analysis.reporting import render_markdown


class TestRenderMarkdown:
    def test_fig_section(self):
        report = run_all(scale=1, only=["FIG1-4"])
        text = render_markdown(report)
        assert "## FIG1-4" in text
        assert "| m₁ = Σ|Λ(e)| | 24 |" in text
        assert "measured in" in text

    def test_thm3_table_shape(self):
        report = run_all(scale=1, only=["THM3"])
        text = render_markdown(report)
        assert "| n | k | m | messages | km | rounds | kn |" in text
        # One data row per sweep point plus header/separator.
        data_rows = [
            line for line in text.splitlines()
            if line.startswith("|") and "---" not in line
        ]
        assert len(data_rows) == 1 + len(report["THM3"]["rows"])

    def test_unknown_experiment_dumped_raw(self):
        text = render_markdown({"CUSTOM": {"anything": 1}})
        assert "## CUSTOM" in text
        assert "anything" in text

    def test_markdown_cli_flag(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--only", "FIG1-4", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Experiment results")
        assert "| optimal cost 1→7 | 2 |" in out
