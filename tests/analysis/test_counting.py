"""Unit tests for size accounting vs the Observations (1-5)."""

import pytest

from repro.analysis.counting import measure_sizes
from repro.topology.generators import (
    complete_network,
    degree_bounded_network,
    grid_network,
    ring_network,
)
from repro.topology.wavelength_assign import (
    bounded_random_wavelengths,
    random_wavelengths,
)


class TestBoundsAcrossGenerators:
    @pytest.mark.parametrize(
        "net",
        [
            ring_network(12, 3),
            grid_network(4, 4, 2),
            complete_network(6, 2),
            degree_bounded_network(20, 4, seed=1),
        ],
        ids=["ring", "grid", "complete", "degree-bounded"],
    )
    def test_all_bounds_hold(self, net):
        report = measure_sizes(net)
        assert report.all_within, report.format()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_availability_bounds_hold(self, seed):
        net = degree_bounded_network(
            15,
            6,
            seed=seed,
            wavelength_policy=random_wavelengths(6, availability=0.4),
        )
        assert measure_sizes(net).all_within

    @pytest.mark.parametrize("seed", range(8))
    def test_restricted_regime_bounds_hold(self, seed):
        """Section IV: tiny k0 against a huge universe."""
        net = ring_network(
            10,
            64,
            seed=seed,
            wavelength_policy=bounded_random_wavelengths(64, k0=3),
        )
        report = measure_sizes(net)
        assert report.all_within
        assert report.sizes.k0 <= 3


class TestRestrictedBoundsAreTighter:
    def test_k_independence_of_sizes(self):
        """With k0 fixed, |V'| and |E'| must not grow with k."""
        sizes = []
        for k in (8, 32, 128):
            net = ring_network(
                10,
                k,
                seed=3,
                wavelength_policy=bounded_random_wavelengths(k, k0=2),
            )
            sizes.append(measure_sizes(net).sizes)
        node_counts = [s.num_layer_nodes for s in sizes]
        edge_counts = [s.num_layer_edges for s in sizes]
        # Random draws differ slightly, but there is no growth trend in k.
        assert max(node_counts) <= 2 * min(node_counts)
        assert max(edge_counts) <= 3 * min(edge_counts)


class TestReportFormatting:
    def test_format_contains_all_rows(self, paper_net):
        text = measure_sizes(paper_net).format()
        assert "|V'| <= 2kn" in text
        assert "restricted" in text
        assert "NO" not in text  # every bound satisfied

    def test_rows_structure(self, paper_net):
        rows = measure_sizes(paper_net).rows()
        assert len(rows) == 9
        assert all(isinstance(within, bool) for *_rest, within in rows)
