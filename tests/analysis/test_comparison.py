"""Unit tests for the Section III-C comparison harness."""

import math

import pytest

from repro.analysis.comparison import (
    ComparisonRow,
    paper_regime_network,
    run_comparison,
)


class TestPaperRegime:
    def test_k_is_log_n(self):
        net = paper_regime_network(64)
        assert net.num_wavelengths == 6  # ceil(log2 64)

    def test_sparse(self):
        net = paper_regime_network(100)
        assert net.num_links <= 4 * 100
        assert net.max_degree <= 4

    def test_tiny_n(self):
        net = paper_regime_network(2)
        assert net.num_wavelengths >= 1


class TestRunComparison:
    def test_rows_shape_and_agreement(self):
        rows = run_comparison([16, 32], queries_per_n=2, seed=1)
        assert len(rows) == 2
        for row in rows:
            assert row.costs_agree, (row.cost_liang_shen, row.cost_cfz)
            assert row.liang_shen_seconds > 0
            assert row.cfz_seconds > 0
            assert row.k == max(1, math.ceil(math.log2(row.n)))

    def test_speedup_property(self):
        row = ComparisonRow(
            n=10, m=20, k=3, d=4,
            liang_shen_seconds=0.5, cfz_seconds=2.0,
            cost_liang_shen=1.0, cost_cfz=1.0,
        )
        assert row.speedup == pytest.approx(4.0)
        assert row.costs_agree

    def test_zero_time_speedup_inf(self):
        row = ComparisonRow(
            n=10, m=20, k=3, d=4,
            liang_shen_seconds=0.0, cfz_seconds=1.0,
            cost_liang_shen=1.0, cost_cfz=1.0,
        )
        assert row.speedup == math.inf

    def test_heap_engine_option(self):
        rows = run_comparison([16], queries_per_n=1, cfz_engine="heap")
        assert rows[0].costs_agree

    def test_speedup_grows_with_n(self):
        """The core Section III-C claim, in miniature: the CFZ/LS time
        ratio increases as n grows (dense-scan CFZ is quadratic)."""
        rows = run_comparison([32, 256], queries_per_n=2, repeats=2, seed=2)
        assert rows[-1].speedup > rows[0].speedup
