"""Unit tests for the experiment runner (quick subset only)."""

import json

import pytest

from repro.analysis.experiments import EXPERIMENTS, run_all


class TestRunner:
    def test_registry_covers_core_experiments(self):
        assert {"FIG1-4", "THM1", "SEC3C", "THM3", "THM4", "RWA"} <= set(EXPERIMENTS)

    def test_fig_experiment(self):
        report = run_all(scale=1, only=["FIG1-4"])
        fig = report["FIG1-4"]
        assert fig["m1"] == 24
        assert fig["layer_nodes"] == 37
        assert fig["route_1_7_cost"] == pytest.approx(2.0)
        assert fig["bounds_ok"]
        assert fig["elapsed_seconds"] >= 0

    def test_thm3_rows_within_budget(self):
        report = run_all(scale=1, only=["THM3"])
        for row in report["THM3"]["rows"]:
            assert row["messages"] <= 3 * row["km"]
            assert row["rounds"] <= row["kn"]

    def test_report_is_json_serializable(self):
        report = run_all(scale=1, only=["FIG1-4", "THM3"])
        text = json.dumps(report)
        assert "FIG1-4" in text

    def test_unknown_experiment_keyerror(self):
        with pytest.raises(KeyError):
            run_all(scale=1, only=["NOPE"])

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            run_all(scale=0)


class TestCLI:
    def test_experiments_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results.json"
        assert main(
            ["experiments", "--only", "FIG1-4", "-o", str(out)]
        ) == 0
        document = json.loads(out.read_text())
        assert document["FIG1-4"]["m1"] == 24

    def test_experiments_unknown_id(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--only", "BOGUS"]) == 1
        assert "unknown experiments" in capsys.readouterr().err
