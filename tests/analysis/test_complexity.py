"""Unit tests for the power-law fitting helpers."""

import math
import random

import pytest

from repro.analysis.complexity import fit_power_law, growth_table


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear(self):
        xs = [10, 20, 40]
        fit = fit_power_law(xs, [0.5 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0)

    def test_noisy_data_close(self):
        rng = random.Random(0)
        xs = [2.0**i for i in range(4, 12)]
        ys = [7 * x**1.5 * rng.uniform(0.9, 1.1) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.15)
        assert fit.r_squared > 0.95

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 8, 32])
        assert fit.predict(8) == pytest.approx(128.0)

    def test_constant_series_exponent_zero(self):
        fit = fit_power_law([1, 2, 4, 8], [5, 5, 5, 5])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])

    def test_nonpositive_filtered(self):
        fit = fit_power_law([0, 1, 2, 4], [9, 2, 4, 8])  # x=0 dropped
        assert fit.exponent == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])


class TestGrowthTable:
    def test_contains_series_and_fit(self):
        xs = [10, 20, 40]
        table = growth_table(
            xs, {"ours": [1.0, 2.0, 4.0], "cfz": [1.0, 4.0, 16.0]}
        )
        assert "ours" in table and "cfz" in table
        assert "x^1.00" in table
        assert "x^2.00" in table

    def test_handles_unfittable_series(self):
        table = growth_table([1, 2], {"zeros": [0.0, 0.0]})
        assert "not fittable" in table
