"""Unit tests for resource criticality analysis."""

import math

import pytest

from repro.analysis.criticality import channel_criticality, fiber_criticality
from repro.core.conversion import NoConversion
from repro.core.network import WDMNetwork


def bottleneck_net() -> WDMNetwork:
    """s -> m -> t with a costly bypass for the first leg only.

    Channel (m, t, λ1) is a true single point of failure.
    """
    net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
    net.add_nodes(["s", "m", "t", "alt"])
    net.add_link("s", "m", {0: 1.0})
    net.add_link("m", "t", {0: 1.0})
    net.add_link("s", "alt", {0: 5.0})
    net.add_link("alt", "m", {0: 5.0})
    return net


class TestChannelCriticality:
    def test_disconnection_detected(self):
        results = channel_criticality(bottleneck_net(), "s", "t")
        worst = results[0]
        assert worst.resource == ("m", "t", 0)
        assert worst.disconnects
        assert worst.regret == math.inf

    def test_bypassable_channel_has_finite_regret(self):
        results = channel_criticality(bottleneck_net(), "s", "t")
        by_resource = {c.resource: c for c in results}
        sm = by_resource[("s", "m", 0)]
        assert not sm.disconnects
        # Losing s->m forces the 5+5 bypass: regret = 10 + 1 - 2 = 9.
        assert sm.regret == pytest.approx(9.0)

    def test_sorted_by_regret(self):
        results = channel_criticality(bottleneck_net(), "s", "t")
        regrets = [c.regret for c in results]
        assert regrets == sorted(regrets, reverse=True)

    def test_only_optimal_path_channels_swept(self, paper_net):
        results = channel_criticality(paper_net, 1, 7)
        assert len(results) == 2  # the 2-hop optimum 1->2->7
        assert all(c.baseline == pytest.approx(2.0) for c in results)

    def test_regret_nonnegative(self, paper_net):
        for c in channel_criticality(paper_net, 1, 6):
            assert c.regret >= -1e-9


class TestFiberCriticality:
    def test_fiber_loss_stronger_than_channel_loss(self, paper_net):
        """Losing a whole fiber can only hurt as much or more than losing
        one of its channels."""
        channels = {c.resource[:2]: c for c in channel_criticality(paper_net, 1, 6)}
        for fiber_crit in fiber_criticality(paper_net, 1, 6):
            a, b = fiber_crit.resource
            for (tail, head), channel_crit in channels.items():
                if frozenset((tail, head)) == frozenset((a, b)):
                    assert fiber_crit.regret >= channel_crit.regret - 1e-9

    def test_unique_fibers(self, paper_net):
        results = fiber_criticality(paper_net, 1, 7)
        fibers = [c.resource for c in results]
        assert len(fibers) == len(set(fibers))

    def test_mesh_has_no_fatal_fiber(self):
        from repro.topology.reference import cost239_network

        net = cost239_network(num_wavelengths=2)
        results = fiber_criticality(net, "London", "Vienna")
        assert all(not c.disconnects for c in results)
