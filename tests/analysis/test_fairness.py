"""Unit tests for fairness analysis."""

import pytest

from repro.analysis.fairness import (
    blocking_concentration,
    gini,
    per_pair_blocking,
    worst_pairs,
)
from repro.wdm.simulation import BlockingStats


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_approaches_one(self):
        assert gini([0] * 99 + [100]) > 0.95

    def test_empty_and_single(self):
        assert gini([]) == 0.0
        assert gini([7]) == 0.0
        assert gini([0, 0, 0]) == 0.0

    def test_known_value(self):
        # Two values (0, x): Gini = 1/2.
        assert gini([0, 10]) == pytest.approx(0.5)

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])


class TestBlockingFairness:
    def _stats(self, blocked_map):
        stats = BlockingStats()
        stats.per_pair_blocked = dict(blocked_map)
        stats.blocked = sum(blocked_map.values())
        stats.offered = stats.blocked + 100
        return stats

    def test_per_pair_copy(self):
        stats = self._stats({("a", "b"): 3})
        mapping = per_pair_blocking(stats)
        mapping.clear()
        assert stats.per_pair_blocked  # original untouched

    def test_worst_pairs_ranked(self):
        stats = self._stats({("a", "b"): 3, ("c", "d"): 9, ("e", "f"): 1})
        ranked = worst_pairs(stats, top=2)
        assert ranked[0] == (("c", "d"), 9)
        assert ranked[1] == (("a", "b"), 3)

    def test_worst_pairs_validation(self):
        with pytest.raises(ValueError):
            worst_pairs(self._stats({}), top=0)

    def test_concentration_no_blocking(self):
        assert blocking_concentration(self._stats({})) == 0.0

    def test_concentration_skewed(self):
        skewed = self._stats({("a", "b"): 50, ("c", "d"): 1, ("e", "f"): 1})
        even = self._stats({("a", "b"): 3, ("c", "d"): 3, ("e", "f"): 3})
        assert blocking_concentration(skewed) > blocking_concentration(even)

    def test_real_simulation_concentration(self):
        """Under load on NSFNET blocking concentrates on a subset of pairs."""
        from repro.topology.reference import nsfnet_network
        from repro.wdm.provisioning import SemilightpathProvisioner
        from repro.wdm.simulation import DynamicSimulation
        from repro.wdm.traffic import TrafficGenerator

        net = nsfnet_network(num_wavelengths=2)
        trace = TrafficGenerator(net.nodes(), 50.0, 1.0, seed=67).generate(400)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        assert stats.blocked > 0
        assert 0.0 <= blocking_concentration(stats) <= 1.0
