"""Tests for the light-hierarchy router (repro.multicast.router)."""

from __future__ import annotations

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.exceptions import MulticastBlockedError, UnknownNodeError
from repro.multicast.hierarchy import MulticastRequest
from repro.multicast.oracle import optimal_hierarchy_cost
from repro.multicast.router import MulticastRouter
from repro.multicast.splitters import MC, MI, TAC, SplitterMap
from repro.verify.certificate import check_hierarchy_certificate


def _branch_net() -> WDMNetwork:
    """a -> b on two wavelengths, then b fans out to x (λ1) and y (λ2)."""
    net = WDMNetwork(num_wavelengths=2,
                     default_conversion=FixedCostConversion(0.5))
    for node in "abxy":
        net.add_node(node)
    net.add_link("a", "b", {0: 1.0, 1: 1.0})
    net.add_link("b", "x", {0: 1.0})
    net.add_link("b", "y", {1: 1.0})
    return net


def _chain_net() -> WDMNetwork:
    """a -> b (two wavelengths) -> c (λ1): member b sits mid-path to c."""
    net = WDMNetwork(num_wavelengths=2,
                     default_conversion=FixedCostConversion(0.5))
    for node in "abc":
        net.add_node(node)
    net.add_link("a", "b", {0: 1.0, 1: 1.0})
    net.add_link("b", "c", {0: 1.0})
    return net


class TestRouting:
    def test_fully_capable_branches_at_the_splitter(self):
        net = _branch_net()
        request = MulticastRequest(source="a", members=("x", "y"))
        result = MulticastRouter(net).route(request)
        # One shared a->b channel, branch at b, one λ1->λ2 conversion.
        assert result.cost == pytest.approx(3.5)
        assert len(result.hierarchy.channel_keys()) == 3
        assert result.cost == pytest.approx(
            optimal_hierarchy_cost(net, request)
        )

    def test_mi_node_is_branched_around_not_through(self):
        net = _branch_net()
        splitters = SplitterMap({"b": MI})
        request = MulticastRequest(source="a", members=("x", "y"))
        result = MulticastRouter(net, splitters=splitters).route(request)
        # b cannot split: each member rides its own a->b channel — the
        # hierarchy visits b twice (4 channels) and skips the conversion.
        assert result.cost == pytest.approx(4.0)
        assert len(result.hierarchy.channel_keys()) == 4
        assert result.cost == pytest.approx(
            optimal_hierarchy_cost(net, request, splitters=splitters)
        )
        cert = check_hierarchy_certificate(
            net, result.hierarchy, splitters=splitters,
            source="a", members=request.members,
        )
        assert cert.ok, cert.violations

    def test_tac_taps_the_through_signal(self):
        net = _chain_net()
        splitters = SplitterMap({"b": TAC})
        request = MulticastRequest(source="a", members=("b", "c"))
        result = MulticastRouter(net, splitters=splitters).route(request)
        # Tap at b, continue to c: two channels, no conversion — b's path
        # is a shared prefix of c's.
        assert result.cost == pytest.approx(2.0)
        hierarchy = result.hierarchy
        assert len(hierarchy.channel_keys()) == 2
        assert hierarchy.paths["c"].hops[:1] == hierarchy.paths["b"].hops
        assert result.cost == pytest.approx(
            optimal_hierarchy_cost(net, request, splitters=splitters)
        )

    def test_mi_member_forces_a_second_arrival(self):
        net = _chain_net()
        splitters = SplitterMap({"b": MI})
        request = MulticastRequest(source="a", members=("b", "c"))
        result = MulticastRouter(net, splitters=splitters).route(request)
        # Optimum (3.0): replicate at the transmitter — deliver b on the
        # a->b λ2 channel (terminating, MI-legal) while c's signal rides
        # a->b λ1 *through* b (pure continuation needs no splitter) onto
        # b->c λ1 conversion-free.  The greedy joins the nearest member
        # first and claims λ1 for b's delivery, so c pays a fresh a->b λ2
        # arrival plus a λ2->λ1 conversion: 3.5.  Heuristic >= optimum is
        # the documented slack; only heuristic < oracle is a bug.
        optimum = optimal_hierarchy_cost(net, request, splitters=splitters)
        assert optimum == pytest.approx(3.0)
        assert result.cost == pytest.approx(3.5)
        assert result.cost >= optimum

    def test_constrained_never_beats_unconstrained(self):
        net = _branch_net()
        request = MulticastRequest(source="a", members=("x", "y"))
        free = MulticastRouter(net).route(request).cost
        for capability in (TAC, MI):
            constrained = MulticastRouter(
                net, splitters=SplitterMap({"b": capability})
            ).route(request).cost
            assert constrained >= free

    def test_certificate_validates_every_result(self, paper_net):
        request = MulticastRequest(source=1, members=(4, 6, 7))
        result = MulticastRouter(paper_net).route(request)
        cert = check_hierarchy_certificate(
            paper_net, result.hierarchy, source=1, members=(4, 6, 7)
        )
        assert cert.ok, cert.violations
        assert cert.recomputed_cost == pytest.approx(result.cost)

    def test_never_beats_the_oracle_on_paper_network(self, paper_net):
        # The DP optimum is a lower bound the greedy may exceed (it joins
        # members nearest-first and never revisits delivery-channel
        # choices) but must never undercut — that would mean an invalid
        # hierarchy slipped through.
        request = MulticastRequest(source=1, members=(4, 6, 7))
        result = MulticastRouter(paper_net).route(request)
        optimum = optimal_hierarchy_cost(paper_net, request)
        assert optimum == pytest.approx(4.5)
        assert result.cost == pytest.approx(5.5)
        assert result.cost >= optimum


class TestFailureModes:
    def test_unknown_nodes_raise(self, paper_net):
        router = MulticastRouter(paper_net)
        with pytest.raises(UnknownNodeError):
            router.route(MulticastRequest(source="ghost", members=(1,)))
        with pytest.raises(UnknownNodeError):
            router.route(MulticastRequest(source=1, members=("ghost",)))

    def test_unreachable_member_blocks_with_names(self):
        net = WDMNetwork(num_wavelengths=1,
                         default_conversion=FixedCostConversion(0.5))
        for node in "abz":
            net.add_node(node)
        net.add_link("a", "b", {0: 1.0})  # z is dark
        router = MulticastRouter(net)
        with pytest.raises(MulticastBlockedError) as excinfo:
            router.route(MulticastRequest(source="a", members=("b", "z")))
        assert excinfo.value.unjoined == ("z",)

    def test_router_is_reusable_across_requests(self, paper_net):
        # The overlay must be fully recovered after each route (success
        # or failure), so back-to-back requests see the pristine network.
        router = MulticastRouter(paper_net)
        first = router.route(MulticastRequest(source=1, members=(4, 6, 7)))
        second = router.route(MulticastRequest(source=1, members=(4, 6, 7)))
        assert first.cost == pytest.approx(second.cost)
        assert first.hierarchy.channel_keys() == second.hierarchy.channel_keys()
