"""Tests for the splitter capability model (repro.multicast.splitters)."""

from __future__ import annotations

import pytest

from repro.multicast.splitters import CAPABILITIES, MC, MI, TAC, SplitterMap
from repro.topology.generators import assign_splitters
from repro.topology.reference import paper_figure1_network


class TestSplitterMap:
    def test_default_is_fully_capable(self):
        splitters = SplitterMap.all_mc()
        assert splitters.capability("anything") == MC
        assert splitters.can_branch(1)
        assert splitters.can_tap_and_continue(1)

    def test_capability_semantics(self):
        splitters = SplitterMap({1: MI, 2: TAC, 3: MC})
        assert not splitters.can_branch(1) and not splitters.can_tap_and_continue(1)
        assert not splitters.can_branch(2) and splitters.can_tap_and_continue(2)
        assert splitters.can_branch(3) and splitters.can_tap_and_continue(3)

    def test_rejects_unknown_capability(self):
        with pytest.raises(ValueError):
            SplitterMap({1: "splitty"})
        with pytest.raises(ValueError):
            SplitterMap({}, default="nope")

    def test_counts(self):
        splitters = SplitterMap({1: MI, 2: TAC})
        assert splitters.counts([1, 2, 3]) == {MC: 1, TAC: 1, MI: 1}

    def test_dict_round_trip(self):
        splitters = SplitterMap({1: MI, "hub": TAC}, default=MC)
        clone = SplitterMap.from_dict(splitters.to_dict())
        assert clone == splitters
        assert clone.capability(1) == MI
        assert clone.capability("hub") == TAC
        assert clone.capability("other") == MC

    def test_capability_constants_are_distinct(self):
        assert len(set(CAPABILITIES)) == 3


class TestAssignSplitters:
    def test_density_one_is_all_mc(self):
        net = paper_figure1_network()
        splitters = assign_splitters(net, density=1.0, seed=3)
        assert splitters.counts(net.nodes()) == {MC: net.num_nodes, TAC: 0, MI: 0}

    def test_density_zero_splits_by_tap_share(self):
        net = paper_figure1_network()
        all_tac = assign_splitters(net, density=0.0, tap_share=1.0, seed=3)
        assert all_tac.counts(net.nodes())[TAC] == net.num_nodes
        all_mi = assign_splitters(net, density=0.0, tap_share=0.0, seed=3)
        assert all_mi.counts(net.nodes())[MI] == net.num_nodes

    def test_seeded_and_deterministic(self):
        net = paper_figure1_network()
        a = assign_splitters(net, density=0.5, seed=11)
        b = assign_splitters(net, density=0.5, seed=11)
        assert a == b

    def test_rejects_bad_probabilities(self):
        net = paper_figure1_network()
        with pytest.raises(ValueError):
            assign_splitters(net, density=1.5)
        with pytest.raises(ValueError):
            assign_splitters(net, tap_share=-0.1)
