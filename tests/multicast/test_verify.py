"""Tests for the multicast differential harness (repro.multicast.verify)."""

from __future__ import annotations

import pytest

from repro.multicast.verify import (
    MulticastHarness,
    MulticastScenario,
    iter_multicast_corpus,
    load_multicast_case,
    multicast_scenario_from_dict,
    multicast_scenario_to_dict,
    random_multicast_scenario,
    save_multicast_case,
    shrink_multicast_scenario,
)


class TestHarness:
    @pytest.mark.parametrize("seed", [0, 7, 1998, 424242])
    def test_seeded_scenarios_are_clean(self, seed):
        scenario = random_multicast_scenario(seed)
        report = MulticastHarness().run(scenario)
        assert report.ok, report.format()
        assert report.requests_checked == len(scenario.requests)
        assert report.routed + report.blocked <= report.requests_checked

    def test_scenario_generation_is_deterministic(self):
        a = random_multicast_scenario(31)
        b = random_multicast_scenario(31)
        assert a.requests == b.requests
        assert a.splitters == b.splitters
        assert a.description == b.description

    def test_perturbation_is_caught_whenever_a_hierarchy_routes(self):
        # The end-to-end self-test: a +0.125 mispricing must trip the
        # certificate on every request that actually produced a hierarchy.
        harness = MulticastHarness(cost_perturbation=0.125)
        seen_routed = 0
        for seed in range(12):
            report = harness.run(random_multicast_scenario(seed))
            if not report.routed:
                continue  # nothing routed -> nothing to misprice
            seen_routed += 1
            assert not report.ok
            assert all(d.kind == "certificate" for d in report.disagreements)
        assert seen_routed > 0

    def test_short_fuzz_runs_clean(self):
        result = MulticastHarness().fuzz(seconds=1.0, seed=1998)
        assert result.ok
        assert result.scenarios_run >= 1
        assert result.requests_checked >= result.scenarios_run >= 1

    def test_fuzz_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            MulticastHarness().fuzz(seconds=0.0)


class TestSerialization:
    def test_dict_round_trip(self):
        scenario = random_multicast_scenario(5)
        clone = multicast_scenario_from_dict(
            multicast_scenario_to_dict(scenario)
        )
        assert clone.requests == scenario.requests
        assert clone.splitters == scenario.splitters
        assert clone.seed == scenario.seed
        assert clone.network.num_nodes == scenario.network.num_nodes
        assert clone.network.num_links == scenario.network.num_links

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            multicast_scenario_from_dict({"format": 99, "multicast": True})
        with pytest.raises(ValueError):
            # A unicast case document lacks the multicast marker.
            multicast_scenario_from_dict({"format": 1})

    def test_save_load_iter_corpus(self, tmp_path):
        scenario = random_multicast_scenario(5)
        path = save_multicast_case(
            tmp_path, scenario, disagreements=("[cost] demo",)
        )
        assert path.name.startswith("mcase-") and path.suffix == ".json"
        loaded = load_multicast_case(path)
        assert loaded.requests == scenario.requests
        corpus = iter_multicast_corpus(tmp_path)
        assert len(corpus) == 1
        assert corpus[0].requests == scenario.requests
        # Content-addressed: saving the same scenario twice is idempotent.
        assert save_multicast_case(tmp_path, scenario) == path
        assert len(iter_multicast_corpus(tmp_path)) == 1

    def test_missing_corpus_directory_is_empty(self, tmp_path):
        assert iter_multicast_corpus(tmp_path / "nope") == []


class TestShrinker:
    def test_passing_scenario_is_rejected(self):
        scenario = random_multicast_scenario(3)
        with pytest.raises(ValueError):
            shrink_multicast_scenario(
                scenario, lambda s: not MulticastHarness().run(s).ok
            )

    def test_shrunk_counterexample_is_member_minimal(self):
        harness = MulticastHarness(cost_perturbation=0.125)

        def fails(candidate: MulticastScenario) -> bool:
            return not harness.run(candidate).ok

        scenario = next(
            s for s in (random_multicast_scenario(seed) for seed in range(50))
            if fails(s)
        )
        shrunk = shrink_multicast_scenario(scenario, fails)
        assert fails(shrunk)
        assert len(shrunk.requests) == 1
        # A cost perturbation needs only one delivered member: the
        # member-set pass must have reached the singleton fixed point.
        assert len(shrunk.requests[0].members) == 1
        assert shrunk.network.num_nodes <= scenario.network.num_nodes
