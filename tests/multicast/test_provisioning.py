"""Tests for multicast admissions in the provisioner
(repro.wdm.provisioning.SemilightpathProvisioner)."""

from __future__ import annotations

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.exceptions import MulticastBlockedError, ReservationError
from repro.multicast.splitters import MI, SplitterMap
from repro.wdm.provisioning import SemilightpathProvisioner


def _tiny() -> WDMNetwork:
    """a -> b on one wavelength, then b fans out to x and y."""
    net = WDMNetwork(num_wavelengths=2,
                     default_conversion=FixedCostConversion(0.5))
    for node in "abxy":
        net.add_node(node)
    net.add_link("a", "b", {0: 1.0, 1: 1.0})
    net.add_link("b", "x", {0: 1.0})
    net.add_link("b", "y", {1: 1.0})
    return net


class TestEstablishMulticast:
    def test_reserves_every_hierarchy_channel(self):
        prov = SemilightpathProvisioner(_tiny())
        conn = prov.establish_multicast("a", ("x", "y"))
        assert prov.num_active_multicast == 1
        assert conn.members == ("x", "y")
        residual = prov.residual_network()
        for tail, head, wavelength in conn.hierarchy.channel_keys():
            if residual.has_link(tail, head):
                assert wavelength not in residual.link(tail, head).costs

    def test_cost_is_repriced_on_the_full_network(self, paper_net):
        prov = SemilightpathProvisioner(paper_net, packing="most-used")
        conn = prov.establish_multicast(1, (4, 6, 7))
        # The packing bias steers routing but must not leak into the
        # admitted cost: Eq. (1) on the real network.
        assert conn.hierarchy.total_cost == pytest.approx(
            conn.hierarchy.evaluate_cost(paper_net)
        )

    def test_second_multicast_is_channel_disjoint(self, paper_net):
        prov = SemilightpathProvisioner(paper_net)
        first = prov.establish_multicast(1, (4, 7))
        second = prov.try_establish_multicast(1, (4, 7))
        if second is not None:  # enough spare channels to admit both
            assert not (
                first.hierarchy.channel_keys()
                & second.hierarchy.channel_keys()
            )

    def test_blocked_when_channels_exhausted(self):
        prov = SemilightpathProvisioner(_tiny())
        prov.establish_multicast("a", ("x", "y"))  # claims both a->b channels
        with pytest.raises(MulticastBlockedError):
            prov.establish_multicast("a", ("x",))
        assert prov.try_establish_multicast("a", ("x",)) is None

    def test_splitter_constraints_apply(self):
        net = _tiny()
        prov = SemilightpathProvisioner(net)
        # b cannot split: joining x and y takes both a->b channels.
        conn = prov.establish_multicast(
            "a", ("x", "y"), splitters=SplitterMap({"b": MI})
        )
        assert len(conn.hierarchy.channel_keys()) == 4


class TestTeardownMulticast:
    def test_releases_channels(self):
        net = _tiny()
        prov = SemilightpathProvisioner(net)
        conn = prov.establish_multicast("a", ("x", "y"))
        prov.teardown_multicast(conn)
        assert prov.num_active_multicast == 0
        # Everything is free again: the same admission succeeds.
        again = prov.establish_multicast("a", ("x", "y"))
        assert again.hierarchy.channel_keys() == conn.hierarchy.channel_keys()

    def test_double_teardown_raises(self):
        prov = SemilightpathProvisioner(_tiny())
        conn = prov.establish_multicast("a", ("x", "y"))
        prov.teardown_multicast(conn)
        with pytest.raises(ReservationError):
            prov.teardown_multicast(conn)


class TestCoexistence:
    def test_unicast_and_multicast_share_the_channel_pool(self):
        net = _tiny()
        prov = SemilightpathProvisioner(net)
        uni = prov.establish("a", "x")  # claims a->b and b->x on some λ
        conn = prov.try_establish_multicast("a", ("x", "y"))
        if conn is not None:
            used = {(h.tail, h.head, h.wavelength) for h in uni.path.hops}
            assert not (used & conn.hierarchy.channel_keys())
        assert prov.num_active == 1
