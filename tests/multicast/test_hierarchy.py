"""Tests for multicast requests and light-hierarchies
(repro.multicast.hierarchy)."""

from __future__ import annotations

import math

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import InvalidPathError
from repro.multicast.hierarchy import (
    LightHierarchy,
    MulticastRequest,
    derive_parents,
)


def _path(*hops: tuple) -> Semilightpath:
    return Semilightpath(hops=tuple(Hop(*h) for h in hops))


class TestMulticastRequest:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            MulticastRequest(source=1, members=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            MulticastRequest(source=1, members=(2, 2))

    def test_rejects_source_as_member(self):
        with pytest.raises(ValueError):
            MulticastRequest(source=1, members=(2, 1))


class TestDeriveParents:
    def test_shared_prefix_forms_chain(self):
        paths = {
            "c": _path(("a", "b", 0), ("b", "c", 0)),
            "d": _path(("a", "b", 0), ("b", "d", 1)),
        }
        parents, violations = derive_parents(paths)
        assert violations == []
        assert parents[("a", "b", 0)] is None
        assert parents[("b", "c", 0)] == ("a", "b", 0)
        assert parents[("b", "d", 1)] == ("a", "b", 0)

    def test_conflicting_parent_is_flagged(self):
        # Both members reach b->c λ1, but through different predecessors:
        # the channel would carry two signals.
        paths = {
            "c1": _path(("a", "b", 0), ("b", "c", 0)),
            "c2": _path(("a", "b", 1), ("b", "c", 0), ("c", "x", 0)),
        }
        _parents, violations = derive_parents(paths)
        assert any("driven by both" in v for v in violations)

    def test_channel_repeated_in_one_path_is_a_cycle(self):
        paths = {
            "b": _path(("a", "b", 0), ("b", "a", 0), ("a", "b", 0)),
        }
        _parents, violations = derive_parents(paths)
        assert violations  # conflicting parent or ungrounded cycle

    def test_hierarchy_may_revisit_a_node_on_distinct_channels(self):
        # The light-hierarchy signature move: pass through b twice on
        # different channels (branching *around* an MI node).
        paths = {
            "x": _path(("a", "b", 0), ("b", "x", 0)),
            "y": _path(("a", "b", 1), ("b", "y", 1)),
        }
        _parents, violations = derive_parents(paths)
        assert violations == []


class TestLightHierarchy:
    def test_paths_must_cover_members(self):
        with pytest.raises(InvalidPathError):
            LightHierarchy(source="a", members=("b", "c"),
                           paths={"b": _path(("a", "b", 0))})

    def test_paths_must_start_at_source_and_end_at_member(self):
        with pytest.raises(InvalidPathError):
            LightHierarchy(source="a", members=("b",),
                           paths={"b": _path(("x", "b", 0))})
        with pytest.raises(InvalidPathError):
            LightHierarchy(source="a", members=("b",),
                           paths={"b": _path(("a", "c", 0))})

    def test_channels_are_deduplicated(self):
        h = LightHierarchy(
            source="a", members=("c", "d"),
            paths={
                "c": _path(("a", "b", 0), ("b", "c", 0)),
                "d": _path(("a", "b", 0), ("b", "d", 0)),
            },
        )
        assert h.num_channels == 3
        assert h.channel_keys() == {
            ("a", "b", 0), ("b", "c", 0), ("b", "d", 0)
        }
        assert h.branch_degrees()[("a", "b", 0)] == 2

    def test_evaluate_cost_charges_channels_once_plus_conversions(self):
        net = WDMNetwork(num_wavelengths=2,
                         default_conversion=FixedCostConversion(0.5))
        for node in "abcd":
            net.add_node(node)
        net.add_link("a", "b", {0: 1.0})
        net.add_link("b", "c", {0: 2.0})
        net.add_link("b", "d", {1: 4.0})
        h = LightHierarchy(
            source="a", members=("c", "d"),
            paths={
                "c": _path(("a", "b", 0), ("b", "c", 0)),
                "d": _path(("a", "b", 0), ("b", "d", 1)),
            },
        )
        # Shared a->b charged once (1), b->c (2), b->d (4) + λ1->λ2 at b (0.5).
        assert h.evaluate_cost(net) == pytest.approx(7.5)

    def test_default_claimed_cost_is_nan(self):
        h = LightHierarchy(source="a", members=("b",),
                           paths={"b": _path(("a", "b", 0))})
        assert math.isnan(h.total_cost)
