"""Tests for the multicast chaos soak (repro.multicast.churn)."""

from __future__ import annotations

import pytest

from repro.multicast.churn import MulticastChurnSoak
from repro.topology.reference import nsfnet_network, paper_figure1_network


class TestChurnSoak:
    @pytest.mark.parametrize("seed", [0, 3, 9, 1998])
    def test_soak_converges_clean(self, seed):
        soak = MulticastChurnSoak(paper_figure1_network(), seed=seed)
        report = soak.run()
        assert report.ok, report.format()
        # One settle per event plus the final pristine-view convergence pass.
        assert report.epochs == report.events_applied + 1
        assert report.final_blocked == 0

    def test_membership_events_are_processed(self):
        # Enough churn that at least one join/leave lands on every seed.
        soak = MulticastChurnSoak(
            nsfnet_network(num_wavelengths=4),
            seed=5,
            num_membership_events=12,
        )
        report = soak.run()
        assert report.ok, report.format()
        assert report.membership_events > 0
        assert report.reroutes > 0

    def test_faults_force_reroutes(self):
        soak = MulticastChurnSoak(
            nsfnet_network(num_wavelengths=4), seed=2, num_faults=16
        )
        report = soak.run()
        assert report.ok, report.format()
        assert report.events_applied >= 16
        # With 16 faults on NSFNET some hierarchy channel gets severed.
        assert report.severed + report.reroutes > 0

    def test_cost_perturbation_trips_the_certificate(self):
        soak = MulticastChurnSoak(
            paper_figure1_network(), seed=0, cost_perturbation=0.125
        )
        report = soak.run()
        assert not report.ok
        assert report.violations
        assert all("cost" in v.detail.lower() or "certificate"
                   in v.detail.lower() or v.detail
                   for v in report.violations)

    def test_soak_is_deterministic(self):
        runs = [
            MulticastChurnSoak(paper_figure1_network(), seed=7).run()
            for _ in range(2)
        ]
        assert runs[0].epochs == runs[1].epochs
        assert runs[0].reroutes == runs[1].reroutes
        assert runs[0].membership_events == runs[1].membership_events
