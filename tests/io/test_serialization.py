"""Unit tests for JSON serialization."""

import json
import math

import pytest

from repro.core.conversion import (
    CallableConversion,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import SerializationError
from repro.io.serialization import (
    conversion_from_dict,
    conversion_to_dict,
    network_from_json,
    network_to_json,
    path_from_json,
    path_to_json,
)


class TestConversionModels:
    @pytest.mark.parametrize(
        "model",
        [
            NoConversion(),
            FixedCostConversion(0.75),
            FullConversion(1.25),
            RangeLimitedConversion(2, cost_per_step=0.5),
            MatrixConversion({(0, 1): 0.3, (2, 0): 0.9}),
        ],
        ids=["none", "fixed", "full", "range", "matrix"],
    )
    def test_round_trip_semantics(self, model):
        restored = conversion_from_dict(conversion_to_dict(model))
        for p in range(4):
            for q in range(4):
                assert restored.cost(p, q) == model.cost(p, q)

    def test_callable_rejected(self):
        with pytest.raises(SerializationError):
            conversion_to_dict(CallableConversion(lambda p, q: 1.0))

    def test_callable_full_rejected(self):
        with pytest.raises(SerializationError):
            conversion_to_dict(FullConversion(lambda p, q: 1.0))

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            conversion_from_dict({"type": "teleport"})


class TestNetworkRoundTrip:
    def test_paper_network(self, paper_net):
        text = network_to_json(paper_net)
        restored = network_from_json(text)
        assert restored.num_nodes == paper_net.num_nodes
        assert restored.num_links == paper_net.num_links
        assert restored.num_wavelengths == paper_net.num_wavelengths
        for link in paper_net.links():
            assert restored.available_wavelengths(link.tail, link.head) == (
                link.wavelengths
            )
            for w, c in link.costs.items():
                assert restored.link_cost(link.tail, link.head, w) == c
        # Per-node conversion override survives (node 3's matrix).
        assert restored.conversion_cost(3, 1, 2) == math.inf
        assert restored.conversion_cost(3, 0, 1) == 0.5

    def test_round_trip_routing_equivalence(self, paper_net):
        restored = network_from_json(network_to_json(paper_net))
        a = LiangShenRouter(paper_net).route(1, 7)
        b = LiangShenRouter(restored).route(1, 7)
        assert a.cost == b.cost

    def test_stable_output(self, paper_net):
        once = network_to_json(paper_net)
        again = network_to_json(network_from_json(once))
        assert once == again

    def test_indent_produces_valid_json(self, paper_net):
        text = network_to_json(paper_net, indent=2)
        assert json.loads(text)["num_wavelengths"] == 4

    def test_tuple_node_ids_rejected(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_node((0, 1))
        with pytest.raises(SerializationError):
            network_to_json(net)

    def test_malformed_json(self):
        with pytest.raises(SerializationError):
            network_from_json("{not json")

    def test_missing_field(self):
        with pytest.raises(SerializationError):
            network_from_json('{"nodes": []}')


class TestPathRoundTrip:
    def test_priced_path(self, paper_net):
        path = LiangShenRouter(paper_net).route(1, 6).path
        restored = path_from_json(path_to_json(path))
        assert restored == path

    def test_unpriced_path(self):
        path = Semilightpath.from_sequence(["a", "b"], [0])
        restored = path_from_json(path_to_json(path))
        assert math.isnan(restored.total_cost)
        assert restored.hops == path.hops

    def test_malformed_path(self):
        with pytest.raises(SerializationError):
            path_from_json('{"hops": [{"tail": "a"}]}')

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            path_from_json("][")
