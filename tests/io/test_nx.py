"""Unit tests for networkx interoperability."""

import math

import networkx as nx
import pytest

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError, SerializationError
from repro.io.nx import (
    multigraph_to_networkx,
    network_from_networkx,
    network_to_networkx,
    routing_graph_to_networkx,
)


class TestExportPhysical:
    def test_shape(self, paper_net):
        g = network_to_networkx(paper_net)
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 11

    def test_wavelength_attributes(self, paper_net):
        g = network_to_networkx(paper_net)
        assert g.edges[1, 2]["wavelengths"] == {0: 1.0, 2: 1.0}

    def test_multigraph_edge_per_channel(self, paper_net):
        g = multigraph_to_networkx(paper_net)
        assert g.number_of_edges() == 24
        assert g.has_edge(1, 2, key=0)
        assert g.has_edge(1, 2, key=2)
        assert not g.has_edge(1, 2, key=1)

    def test_multigraph_weights(self, paper_net):
        g = multigraph_to_networkx(paper_net)
        assert g.edges[1, 2, 0]["weight"] == 1.0


class TestRoutingGraphExport:
    def test_networkx_dijkstra_matches_router(self, paper_net):
        router = LiangShenRouter(paper_net)
        for s, t in [(1, 7), (1, 6), (5, 7)]:
            g, src, dst = routing_graph_to_networkx(paper_net, s, t)
            expected = router.route(s, t).cost
            assert nx.dijkstra_path_length(g, src, dst) == pytest.approx(expected)

    def test_unreachable(self, paper_net):
        g, src, dst = routing_graph_to_networkx(paper_net, 7, 1)
        with pytest.raises(nx.NetworkXNoPath):
            nx.dijkstra_path_length(g, src, dst)

    @pytest.mark.parametrize("trial", range(10))
    def test_random_networks_match(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(2200 + trial)
        nodes = net.nodes()
        g, src, dst = routing_graph_to_networkx(net, nodes[0], nodes[-1])
        try:
            expected = LiangShenRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            expected = None
        try:
            actual = nx.dijkstra_path_length(g, src, dst)
        except nx.NetworkXNoPath:
            actual = None
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)


class TestImport:
    def test_round_trip(self, paper_net):
        restored = network_from_networkx(
            network_to_networkx(paper_net), num_wavelengths=4
        )
        assert restored.num_nodes == paper_net.num_nodes
        assert restored.num_links == paper_net.num_links
        for link in paper_net.links():
            assert restored.available_wavelengths(link.tail, link.head) == (
                link.wavelengths
            )

    def test_round_trip_routing(self, paper_net):
        restored = network_from_networkx(
            network_to_networkx(paper_net), num_wavelengths=4
        )
        # Conversions are not carried by the plain export (models are
        # Python objects); the default full-conversion applies, so only
        # compare on a conversion-free query.
        a = LiangShenRouter(paper_net).route(1, 7).cost
        b = LiangShenRouter(restored).route(1, 7).cost
        assert a == pytest.approx(b)

    def test_conversion_attribute_honored(self):
        from repro.core.conversion import NoConversion

        g = nx.DiGraph()
        g.add_node("a", conversion=NoConversion())
        g.add_node("b")
        g.add_edge("a", "b", wavelengths={0: 1.0})
        net = network_from_networkx(g, num_wavelengths=2)
        assert net.conversion_cost("a", 0, 1) == math.inf

    def test_missing_wavelengths_attribute(self):
        g = nx.DiGraph()
        g.add_edge("a", "b")
        with pytest.raises(SerializationError):
            network_from_networkx(g, num_wavelengths=1)

    def test_multigraph_rejected(self):
        with pytest.raises(SerializationError):
            network_from_networkx(nx.MultiDiGraph(), num_wavelengths=1)
