"""Unit tests for DOT export (Figures 1-4 regeneration)."""

from repro.io.dot import (
    bipartite_to_dot,
    multigraph_to_dot,
    network_to_dot,
    routing_graph_to_dot,
)


class TestNetworkDot:
    def test_fig1_structure(self, paper_net):
        dot = network_to_dot(paper_net)
        assert dot.startswith("digraph G {")
        assert dot.rstrip().endswith("}")
        assert '"1" -> "2"' in dot
        assert "{λ1,λ3}" in dot  # Λ(<1,2>)
        # 11 directed link lines.
        assert dot.count("->") == 11

    def test_quoting(self):
        from repro.core.network import WDMNetwork

        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(['he"llo', "world"])
        net.add_link('he"llo', "world", {0: 1.0})
        dot = network_to_dot(net)
        assert r"he\"llo" in dot


class TestMultigraphDot:
    def test_fig2_parallel_edges(self, paper_net):
        dot = multigraph_to_dot(paper_net)
        assert dot.count("->") == 24  # one per (link, wavelength)
        assert 'label="λ1:1"' in dot


class TestBipartiteDot:
    def test_fig3_clusters_and_edges(self, paper_net):
        dot = bipartite_to_dot(paper_net, 3)
        assert "cluster_x" in dot and "cluster_y" in dot
        assert "(3,λ1):X" in dot
        assert "(3,λ4):Y" in dot
        # Forbidden λ2 -> λ3 edge absent; allowed λ2 -> λ4 present.
        assert '"(3,λ2):X" -> "(3,λ3):Y"' not in dot
        assert '"(3,λ2):X" -> "(3,λ4):Y"' in dot

    def test_pass_through_zero_weight(self, paper_net):
        dot = bipartite_to_dot(paper_net, 3)
        assert '"(3,λ4):X" -> "(3,λ4):Y" [label="0"]' in dot


class TestRoutingGraphDot:
    def test_terminals_present(self, paper_net):
        dot = routing_graph_to_dot(paper_net, 1, 7)
        assert "\"1'\"" in dot
        assert "\"7''\"" in dot

    def test_fig4_restriction(self, paper_net):
        dot = routing_graph_to_dot(paper_net, 1, 7, restrict_to={1, 3})
        # Only G_1 and G_3 fragments appear.
        assert "(1," in dot and "(3," in dot
        assert "(2," not in dot and "(5," not in dot
        # The two parallel E_org links 3 -> 1 from Fig. 4 (λ2 and λ3).
        assert '"(3,λ2):Y" -> "(1,λ2):X"' in dot
        assert '"(3,λ3):Y" -> "(1,λ3):X"' in dot

    def test_is_parseable_shape(self, paper_net):
        dot = routing_graph_to_dot(paper_net, 1, 7)
        assert dot.count("{") == dot.count("}")
