"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.serialization import network_to_json
from repro.topology.reference import paper_figure1_network


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.json"
    path.write_text(network_to_json(paper_figure1_network()))
    return str(path)


class TestRoute:
    def test_basic_route(self, fig1_file, capsys):
        assert main(["route", fig1_file, "1", "7"]) == 0
        out = capsys.readouterr().out
        assert "cost 2" in out
        assert "lightpath" in out

    def test_route_with_conversion(self, fig1_file, capsys):
        assert main(["route", fig1_file, "1", "6"]) == 0
        out = capsys.readouterr().out
        assert "converter settings" in out

    def test_unreachable_exit_code(self, fig1_file, capsys):
        assert main(["route", fig1_file, "7", "1"]) == 1
        assert "no semilightpath" in capsys.readouterr().err

    def test_json_output(self, fig1_file, capsys):
        assert main(["route", fig1_file, "1", "7", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document[0]["total_cost"] == 2.0

    def test_max_conversions(self, fig1_file, capsys):
        assert main(["route", fig1_file, "1", "6", "--max-conversions", "0"]) == 1

    def test_alternatives(self, fig1_file, capsys):
        assert main(["route", fig1_file, "1", "6", "--alternatives", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("#") == 3

    def test_missing_file(self, capsys):
        assert main(["route", "/nonexistent.json", "1", "2"]) == 1


class TestGenerate:
    @pytest.mark.parametrize(
        "kind", ["ring", "grid", "waxman", "degree-bounded", "nsfnet", "arpanet", "paper-fig1"]
    )
    def test_generate_kinds_round_trip(self, kind, tmp_path, capsys):
        out_file = tmp_path / "net.json"
        assert main(
            ["generate", kind, "--nodes", "9", "--wavelengths", "2", "-o", str(out_file)]
        ) == 0
        from repro.io.serialization import network_from_json

        net = network_from_json(out_file.read_text())
        assert net.num_nodes >= 2

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "ring", "--nodes", "4"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["num_wavelengths"] == 4


class TestSizes:
    def test_sizes_report(self, fig1_file, capsys):
        assert main(["sizes", fig1_file]) == 0
        out = capsys.readouterr().out
        assert "|V'| <= 2kn" in out
        assert "NO" not in out


class TestProvision:
    def test_provision_both_policies(self, fig1_file, capsys):
        for policy in ("semilightpath", "first-fit"):
            assert main(
                [
                    "provision", fig1_file,
                    "--load", "2", "--requests", "30", "--policy", policy,
                ]
            ) == 0
            out = capsys.readouterr().out
            assert f"policy={policy}" in out
            assert "P_block=" in out


class TestPlan:
    def test_uniform_default(self, tmp_path, capsys):
        from repro.io.serialization import network_to_json
        from repro.topology.reference import nsfnet_network

        net_file = tmp_path / "nsf.json"
        net_file.write_text(network_to_json(nsfnet_network(num_wavelengths=8)))
        code = main(["plan", str(net_file)])
        out = capsys.readouterr().out
        assert "carried" in out
        assert code in (0, 3)

    def test_demands_file(self, fig1_file, tmp_path, capsys):
        demands = tmp_path / "demands.json"
        demands.write_text(
            json.dumps([{"source": 1, "target": 7}, {"source": 5, "target": 7, "count": 2}])
        )
        assert main(["plan", fig1_file, "--demands", str(demands)]) == 0
        assert "carried 3/3" in capsys.readouterr().out

    def test_gravity_matrix(self, fig1_file, capsys):
        code = main(["plan", fig1_file, "--gravity", "10", "--ordering", "random", "--restarts", "3"])
        out = capsys.readouterr().out
        assert "carried" in out
        assert code in (0, 3)

    def test_rejection_exit_code(self, fig1_file, tmp_path, capsys):
        demands = tmp_path / "demands.json"
        # Node 7 has no out-links: 7 -> 1 is unroutable.
        demands.write_text(json.dumps([{"source": 7, "target": 1}]))
        assert main(["plan", fig1_file, "--demands", str(demands)]) == 3
        assert "rejected" in capsys.readouterr().out


class TestDot:
    def test_fig1(self, fig1_file, capsys):
        assert main(["dot", fig1_file, "--figure", "fig1"]) == 0
        assert capsys.readouterr().out.startswith("digraph G {")

    def test_fig2(self, fig1_file, capsys):
        assert main(["dot", fig1_file, "--figure", "fig2"]) == 0
        assert "λ1" in capsys.readouterr().out

    def test_fig3_requires_node(self, fig1_file, capsys):
        assert main(["dot", fig1_file, "--figure", "fig3"]) == 1
        assert main(["dot", fig1_file, "--figure", "fig3", "--node", "3"]) == 0

    def test_gst(self, fig1_file, capsys):
        assert main(
            ["dot", fig1_file, "--figure", "gst", "--source", "1", "--target", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "1'" in out and "7''" in out

    def test_gst_requires_endpoints(self, fig1_file, capsys):
        assert main(["dot", fig1_file, "--figure", "gst"]) == 1


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestVerify:
    def test_verify_clean_sweep(self, tmp_path, capsys):
        assert main([
            "verify", "--corpus", str(tmp_path / "empty"),
            "--scenarios", "3", "--seed", "0", "--max-nodes", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 corpus case(s) replayed" in out
        assert "3 seeded scenario(s)" in out
        assert "0 failure(s)" in out

    def test_verify_replays_golden_corpus(self, capsys):
        assert main([
            "verify", "--corpus", "tests/verify/corpus", "--scenarios", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "corpus case(s) replayed" in out
        assert "0 corpus" not in out


class TestFuzz:
    def test_fuzz_smoke(self, tmp_path, capsys):
        assert main([
            "fuzz", "--seconds", "0.5", "--seed", "0",
            "--corpus", str(tmp_path / "corpus"), "--max-nodes", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario(s)" in out
        assert "0 failure(s)" in out
        # A clean run must not create corpus files.
        assert not (tmp_path / "corpus").exists()

    def test_fuzz_rejects_bad_budget(self, capsys):
        assert main(["fuzz", "--seconds", "0"]) == 1
        assert "--seconds" in capsys.readouterr().err


class TestServeBench:
    def test_serve_bench_prints_metrics(self, fig1_file, capsys):
        assert main([
            "serve-bench", fig1_file, "--requests", "50", "--workers", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "of 50 queries" in out
        assert "cache.hits" in out
        assert "engine.served" in out

    def test_serve_bench_with_workers_and_invalidation(self, fig1_file, capsys):
        assert main([
            "serve-bench", fig1_file, "--requests", "40", "--workers", "2",
            "--invalidate-every", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache.rebuilds" in out
        assert "epoch=3" in out

    def test_serve_bench_missing_file(self, capsys):
        assert main(["serve-bench", "/nonexistent.json"]) == 1


class TestExitCodes:
    def test_constants_are_stable_and_distinct(self):
        from repro import cli

        codes = {
            cli.EXIT_OK: 0,
            cli.EXIT_ERROR: 1,
            cli.EXIT_BOUNDS: 2,
            cli.EXIT_REJECTED: 3,
            cli.EXIT_DISAGREEMENT: 4,
            cli.EXIT_VIOLATION: 5,
        }
        assert all(actual == expected for actual, expected in codes.items())
        assert len(codes) == 6  # pairwise distinct


class TestChaos:
    def test_short_soak_holds_invariants(self, fig1_file, tmp_path, capsys):
        assert main([
            "chaos", fig1_file, "--seconds", "1", "--faults", "5",
            "--workers", "2", "--seed", "11",
            "--repro-dir", str(tmp_path / "repros"),
        ]) == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        assert "faults applied" in out
        # A clean soak must not persist any repro case.
        assert not (tmp_path / "repros").exists()

    def test_inject_cost_bug_self_test(self, fig1_file, tmp_path, capsys):
        assert main([
            "chaos", fig1_file, "--seconds", "0.8", "--faults", "4",
            "--workers", "2",
            "--repro-dir", str(tmp_path / "repros"),
            "--inject-cost-bug",
        ]) == 0
        out = capsys.readouterr().out
        assert "injected cost bug caught" in out
        assert list((tmp_path / "repros").glob("case-*.json"))

    def test_rejects_bad_budget(self, capsys):
        assert main(["chaos", "--seconds", "0"]) == 1
        assert "--seconds" in capsys.readouterr().err

    def test_rejects_bad_fault_count(self, capsys):
        assert main(["chaos", "--faults", "0"]) == 1
        assert "--faults" in capsys.readouterr().err

    def test_cluster_flag_rejects_cost_bug_combo(self, fig1_file, capsys):
        assert main([
            "chaos", fig1_file, "--cluster", "--inject-cost-bug",
        ]) == 1
        assert "--inject-cost-bug" in capsys.readouterr().err


class TestCluster:
    def test_bench_writes_report(self, fig1_file, tmp_path, capsys):
        out_file = tmp_path / "serving.json"
        assert main([
            "cluster", "bench", fig1_file, "--queries", "400",
            "--concurrency", "2", "--batch", "16", "--probes", "20",
            "--output", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out
        document = json.loads(out_file.read_text())
        assert document["total_queries"] >= 400
        assert document["identity_probe"]["mismatches"] == 0
        assert document["tier"] == {
            "shards": 2, "replicas": 2, "workers_per_replica": 1,
            "heap": "flat",
        }
        run = document["runs"][0]
        assert {"p50", "p99", "p999"} <= set(run["latency_ms"])
        assert document["cpu_count"] >= 1

    def test_smoke_holds_invariants(self, fig1_file, capsys):
        assert main([
            "cluster", "smoke", fig1_file, "--seconds", "1.5",
            "--faults", "2", "--seed", "1998",
        ]) == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out

    def test_rejects_bad_queries(self, fig1_file, capsys):
        assert main([
            "cluster", "bench", fig1_file, "--queries", "0",
        ]) == 1
        assert "--queries" in capsys.readouterr().err


class TestServe:
    def test_serve_bench_round_trip_over_uds(self, fig1_file, capsys):
        assert main([
            "serve", fig1_file, "--uds", "", "--bench", "--requests", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es) vs in-process router" in out
        assert "all-pairs over the wire" in out

    def test_serve_bench_over_tcp(self, fig1_file, capsys):
        assert main([
            "serve", fig1_file, "--host", "127.0.0.1", "--port", "0",
            "--bench", "--requests", "3", "--workers", "1",
        ]) == 0
        assert "0 mismatch(es)" in capsys.readouterr().out

    def test_rejects_bad_ip(self, fig1_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", fig1_file, "--host", "not-an-ip"])
        assert excinfo.value.code == 2
        assert "not a valid IPv4 address" in capsys.readouterr().err

    def test_rejects_bad_port(self, fig1_file, capsys):
        for bad in ("65536", "-1", "http"):
            with pytest.raises(SystemExit) as excinfo:
                main(["serve", fig1_file, "--port", bad])
            assert excinfo.value.code == 2

    def test_rejects_zero_workers(self, fig1_file, capsys):
        assert main(["serve", fig1_file, "--workers", "0", "--bench"]) == 1
        assert "--workers" in capsys.readouterr().err

    def test_serve_missing_file(self, capsys):
        assert main(["serve", "/nonexistent.json", "--bench"]) == 1


class TestServerOracleFlag:
    def test_fuzz_with_live_server_oracle(self, tmp_path, capsys):
        assert main([
            "fuzz", "--seconds", "2", "--seed", "1998", "--server",
            "--corpus", str(tmp_path / "corpus"), "--max-nodes", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "liang:server" in out
        assert "0 failure(s)" in out
        from repro.shortestpath.shared import leaked_segments

        assert leaked_segments() == []

    def test_verify_with_live_server_oracle(self, tmp_path, capsys):
        assert main([
            "verify", "--corpus", str(tmp_path / "empty"),
            "--scenarios", "2", "--seed", "0", "--max-nodes", "6",
            "--server",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
