"""Tests for seeded fault schedules (repro.faults.plan)."""

from __future__ import annotations

import pytest

from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, generate_plan


class TestFaultEvent:
    def test_time_must_be_fractional(self):
        with pytest.raises(ValueError):
            FaultEvent(1.5, "latency", amount=0.01)
        with pytest.raises(ValueError):
            FaultEvent(-0.1, "latency", amount=0.01)

    def test_ordering_is_by_time(self):
        late = FaultEvent(0.9, "link_fail", tail=1, head=2)
        early = FaultEvent(0.1, "worker_crash")
        assert sorted([late, early])[0] is early

    def test_dict_round_trip_drops_nones(self):
        event = FaultEvent(0.25, "channel_fail", tail=1, head=2, wavelength=0)
        document = event.to_dict()
        assert "node" not in document and "amount" not in document
        assert FaultEvent.from_dict(document) == event

    def test_describe_names_the_resource(self):
        assert "1" in FaultEvent(0.1, "link_fail", tail=1, head=2).describe()
        assert "λ0" in FaultEvent(
            0.1, "channel_fail", tail=1, head=2, wavelength=0
        ).describe()
        assert "at" in FaultEvent(0.1, "converter_fail", node=3).describe()


class TestFaultPlan:
    def test_events_sorted_on_construction(self):
        plan = FaultPlan(
            events=(
                FaultEvent(0.9, "worker_crash"),
                FaultEvent(0.1, "latency", amount=0.01),
            )
        )
        assert [e.at for e in plan.events] == [0.1, 0.9]

    def test_num_failures_excludes_recoveries(self):
        plan = FaultPlan(
            events=(
                FaultEvent(0.1, "link_fail", tail=1, head=2),
                FaultEvent(0.8, "link_recover", tail=1, head=2),
                FaultEvent(0.3, "exception", amount=2.0),
            )
        )
        assert plan.num_failures == 2
        assert plan.kinds() == {
            "link_fail": 1,
            "link_recover": 1,
            "exception": 1,
        }

    def test_due_window_is_half_open(self):
        plan = FaultPlan(
            events=(
                FaultEvent(0.2, "worker_crash"),
                FaultEvent(0.5, "worker_crash"),
                FaultEvent(0.8, "worker_crash"),
            )
        )
        assert [e.at for e in plan.due(0.2, 0.8)] == [0.5, 0.8]
        assert plan.due(0.0, 0.2) == [plan.events[0]]
        assert plan.due(0.8, 1.0) == []

    def test_json_round_trip(self, paper_net):
        plan = generate_plan(paper_net, seed=42, num_faults=10)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.seed == 42


class TestGeneratePlan:
    def test_deterministic_in_seed(self, paper_net):
        a = generate_plan(paper_net, seed=7, num_faults=15)
        b = generate_plan(paper_net, seed=7, num_faults=15)
        assert a.to_json() == b.to_json()
        assert a.to_json() != generate_plan(paper_net, seed=8, num_faults=15).to_json()

    def test_every_kind_represented(self, paper_net):
        plan = generate_plan(paper_net, seed=0, num_faults=len(FAULT_KINDS))
        kinds = plan.kinds()
        assert "link_fail" in kinds
        assert "channel_fail" in kinds
        assert "converter_fail" in kinds
        assert "latency" in kinds
        assert "exception" in kinds
        assert "worker_crash" in kinds

    def test_every_failure_recovers_before_plan_end(self, paper_net):
        plan = generate_plan(paper_net, seed=3, num_faults=20)
        open_resources: set[tuple] = set()
        for event in plan.events:
            if event.kind.endswith("_recover"):
                key = (
                    event.kind.rsplit("_", 1)[0],
                    event.tail,
                    event.head,
                    event.wavelength,
                    event.node,
                )
                assert key in open_resources, f"recovery without failure: {event}"
                open_resources.discard(key)
            elif event.kind.endswith("_fail"):
                key = (
                    event.kind.rsplit("_", 1)[0],
                    event.tail,
                    event.head,
                    event.wavelength,
                    event.node,
                )
                assert key not in open_resources, f"double failure: {event}"
                open_resources.add(key)
        assert not open_resources, "plan must end on the pristine network"

    def test_resource_faults_target_distinct_resources(self, paper_net):
        plan = generate_plan(paper_net, seed=1, num_faults=20)
        fibers = [
            frozenset((e.tail, e.head))
            for e in plan.events
            if e.kind == "link_fail"
        ]
        channels = [
            (e.tail, e.head, e.wavelength)
            for e in plan.events
            if e.kind == "channel_fail"
        ]
        nodes = [e.node for e in plan.events if e.kind == "converter_fail"]
        assert len(fibers) == len(set(fibers))
        assert len(channels) == len(set(channels))
        assert len(nodes) == len(set(nodes))

    def test_rejects_bad_arguments(self, paper_net):
        with pytest.raises(ValueError):
            generate_plan(paper_net, num_faults=0)
        with pytest.raises(ValueError):
            generate_plan(paper_net, kinds=("link", "gremlin"))
