"""Tests for the retry policy and circuit breaker (repro.faults.resilience)."""

from __future__ import annotations

import pytest

from repro.exceptions import CircuitOpenError, NoPathError, TransientBackendError
from repro.faults.resilience import CircuitBreaker, RetryPolicy


def flaky(failures: int, result: object = "ok"):
    """A callable failing transiently *failures* times, then answering."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise TransientBackendError(f"flake #{state['calls']}")
        return result

    fn.state = state
    return fn


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        sleeps: list[float] = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, seed=7, sleep=sleeps.append
        )
        fn = flaky(2)
        assert policy.call(fn) == "ok"
        assert fn.state["calls"] == 3
        assert len(sleeps) <= 2  # zero-length jitter draws skip the sleep

    def test_exhausting_attempts_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, seed=0)
        fn = flaky(99)
        with pytest.raises(TransientBackendError, match="flake #3"):
            policy.call(fn)
        assert fn.state["calls"] == 3

    def test_non_transient_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)

        def fn():
            raise NoPathError("a", "b")

        with pytest.raises(NoPathError):
            policy.call(fn)

    def test_deadline_abandons_retry(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.01, seed=1)
        fn = flaky(99)
        # A deadline already in the past: the first backoff would land
        # beyond it, so exactly one attempt is made.
        with pytest.raises(TransientBackendError, match="flake #1"):
            policy.call(fn, deadline=100.0, clock=lambda: 100.0)
        assert fn.state["calls"] == 1

    def test_on_retry_observer_sees_each_attempt(self):
        seen: list[int] = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.0, sleep=lambda _: None
        )
        policy.call(flaky(3), on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [1, 2, 3]

    def test_delay_respects_exponential_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.3, seed=11)
        for attempt in range(6):
            cap = min(0.3, 0.1 * 2**attempt)
            assert 0.0 <= policy.delay(attempt) <= cap

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0, transitions=None):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout=reset,
            clock=lambda: now[0],
            on_transition=(
                None
                if transitions is None
                else lambda old, new: transitions.append((old, new))
            ),
        )
        return breaker, now

    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            breaker.before_call()
            breaker.record_failure()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.before_call()
        breaker.record_failure()
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 1

    def test_open_breaker_fails_fast_with_retry_after(self):
        breaker, now = self.make(threshold=1, reset=10.0)
        self.trip(breaker)
        now[0] = 4.0
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_half_open_admits_one_probe_and_success_closes(self):
        transitions: list[tuple[str, str]] = []
        breaker, now = self.make(threshold=1, reset=10.0, transitions=transitions)
        self.trip(breaker)
        now[0] = 11.0
        breaker.before_call()  # the probe is admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # A concurrent call while the probe is in flight fails fast.
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert transitions == [
            (CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
            (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
            (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
        ]

    def test_probe_failure_reopens_and_restarts_the_timer(self):
        breaker, now = self.make(threshold=1, reset=10.0)
        self.trip(breaker)
        now[0] = 11.0
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        now[0] = 20.0  # 9s after the re-open: still within the new window
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        now[0] = 21.5
        breaker.before_call()
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)
