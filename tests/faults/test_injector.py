"""Tests for live fault injection (repro.faults.injector)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.conversion import NoConversion
from repro.exceptions import InjectedFaultError
from repro.faults.injector import ChunkCrash, FaultInjector
from repro.faults.plan import FaultEvent
from repro.service.service import RoutingService
from repro.wdm.events import EventLog


class TestDegradedView:
    def test_link_fail_removes_both_directions(self, paper_net):
        injector = FaultInjector(paper_net)
        assert injector.pristine
        injector.apply(FaultEvent(0.1, "link_fail", tail=1, head=2))
        view = injector.network_view()
        assert not view.has_link(1, 2)
        assert not view.has_link(2, 1)
        assert not injector.pristine
        injector.apply(FaultEvent(0.9, "link_recover", tail=1, head=2))
        assert injector.network_view().has_link(1, 2)
        assert injector.pristine

    def test_channel_fail_is_directed_and_single_wavelength(self, paper_net):
        wavelength = next(iter(paper_net.link(1, 2).costs))
        injector = FaultInjector(paper_net)
        injector.apply(
            FaultEvent(0.1, "channel_fail", tail=1, head=2, wavelength=wavelength)
        )
        view = injector.network_view()
        assert wavelength not in view.link(1, 2).costs
        if paper_net.has_link(2, 1):
            assert view.link(2, 1).costs == paper_net.link(2, 1).costs

    def test_dark_link_preserves_topology(self, paper_net):
        injector = FaultInjector(paper_net)
        for wavelength in paper_net.link(1, 2).costs:
            injector.apply(
                FaultEvent(
                    0.1, "channel_fail", tail=1, head=2, wavelength=wavelength
                )
            )
        view = injector.network_view()
        assert view.has_link(1, 2)
        assert not view.link(1, 2).costs

    def test_converter_fail_forces_continuity(self, paper_net):
        injector = FaultInjector(paper_net)
        injector.apply(FaultEvent(0.1, "converter_fail", node=4))
        assert isinstance(injector.network_view().conversion(4), NoConversion)
        injector.apply(FaultEvent(0.9, "converter_recover", node=4))
        assert not isinstance(injector.network_view().conversion(4), NoConversion)

    def test_base_network_is_never_mutated(self, paper_net):
        costs_before = dict(paper_net.link(1, 2).costs)
        injector = FaultInjector(paper_net)
        injector.apply(FaultEvent(0.1, "link_fail", tail=1, head=2))
        injector.network_view()
        assert paper_net.has_link(1, 2)
        assert paper_net.link(1, 2).costs == costs_before

    def test_unknown_kind_rejected(self, paper_net):
        with pytest.raises(ValueError):
            FaultInjector(paper_net).apply(FaultEvent(0.1, "gremlin"))


class TestEngineFaults:
    def test_latency_fault_sleeps_once(self, paper_net):
        naps: list[float] = []
        injector = FaultInjector(paper_net, sleep=naps.append)
        injector.apply(FaultEvent(0.1, "latency", amount=0.25))
        injector.worker_hook()
        injector.worker_hook()  # queue drained: second call is a no-op
        assert naps == [0.25]

    def test_exception_fault_raises_per_pending_unit(self, paper_net):
        injector = FaultInjector(paper_net)
        injector.apply(FaultEvent(0.1, "exception", amount=2.0))
        assert injector.active_faults()["engine_pending"] == 2
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.worker_hook()
        injector.worker_hook()  # drained
        assert injector.active_faults()["engine_pending"] == 0

    def test_worker_crash_is_consumed_once(self, paper_net):
        injector = FaultInjector(paper_net)
        injector.apply(FaultEvent(0.1, "worker_crash"))
        assert injector.take_pending_crash()
        assert not injector.take_pending_crash()


class TestChunkCrash:
    def test_raises_only_on_matching_chunk(self):
        crash = ChunkCrash(crash_index=2)
        crash(0)
        crash(1)
        with pytest.raises(InjectedFaultError):
            crash(2)

    def test_round_trips_through_pickle(self):
        clone = pickle.loads(pickle.dumps(ChunkCrash(crash_index=3)))
        with pytest.raises(InjectedFaultError):
            clone(3)


class TestServiceWiring:
    def test_failures_bump_epochs_and_reroute(self, paper_net):
        injector = FaultInjector(paper_net)
        with RoutingService(injector.network_view, workers=0) as service:
            injector.attach(service)
            baseline = service.route(1, 7)
            hop = baseline.hops[0]
            before = service.epoch
            injector.apply(
                FaultEvent(
                    0.1,
                    "channel_fail",
                    tail=hop.tail,
                    head=hop.head,
                    wavelength=hop.wavelength,
                )
            )
            assert service.epoch == before + 1  # fine-grained degradation
            rerouted = service.route(1, 7)
            assert (hop.tail, hop.head, hop.wavelength) not in {
                (h.tail, h.head, h.wavelength) for h in rerouted.hops
            }
            assert rerouted.total_cost >= baseline.total_cost

    def test_link_fail_degrades_both_directions(self, paper_net):
        injector = FaultInjector(paper_net)
        with RoutingService(injector.network_view, workers=0) as service:
            injector.attach(service)
            before = service.epoch
            # The fiber {1, 2} fails both directions, but only the
            # directed links that exist in the base network are notified
            # (incremental caches patch per resource); figure 1's 1->2
            # has no reverse link, so the fail is a single notification.
            injector.apply(FaultEvent(0.1, "link_fail", tail=1, head=2))
            assert service.epoch == before + 1
            injector.apply(FaultEvent(0.9, "link_recover", tail=1, head=2))
            assert service.epoch == before + 2

    def test_engine_faults_do_not_bump_epochs(self, paper_net):
        injector = FaultInjector(paper_net)
        with RoutingService(injector.network_view, workers=0) as service:
            injector.attach(service)
            before = service.epoch
            injector.apply(FaultEvent(0.1, "latency", amount=0.0))
            injector.apply(FaultEvent(0.2, "exception", amount=1.0))
            injector.apply(FaultEvent(0.3, "worker_crash"))
            assert service.epoch == before

    def test_incremental_service_round_trips_faults(self, paper_net):
        """Against an incremental service, a fail/recover cycle is served
        entirely by patches (after the initial build) and ends on the
        exact pristine routes."""
        injector = FaultInjector(paper_net)
        with RoutingService(
            injector.network_view, workers=0, incremental=True
        ) as service:
            injector.attach(service)
            baseline = service.route(1, 7)
            hop = baseline.hops[0]
            injector.apply(
                FaultEvent(
                    0.1,
                    "channel_fail",
                    tail=hop.tail,
                    head=hop.head,
                    wavelength=hop.wavelength,
                )
            )
            degraded = service.route(1, 7)
            assert degraded.hops != baseline.hops
            injector.apply(
                FaultEvent(
                    0.9,
                    "channel_recover",
                    tail=hop.tail,
                    head=hop.head,
                    wavelength=hop.wavelength,
                )
            )
            restored = service.route(1, 7)
            assert restored.hops == baseline.hops
            assert restored.total_cost == baseline.total_cost
            counters = service.cache.counters()
            assert counters["rebuilds"] == 1
            assert counters["patches"] == 2

    def test_converter_faults_notify_incremental_service(self, paper_net):
        injector = FaultInjector(paper_net)
        with RoutingService(
            injector.network_view, workers=0, incremental=True
        ) as service:
            injector.attach(service)
            before = service.epoch
            injector.apply(FaultEvent(0.1, "converter_fail", node=2))
            assert service.epoch == before + 1
            injector.apply(FaultEvent(0.9, "converter_recover", node=2))
            assert service.epoch == before + 2

    def test_observer_records_the_fault_history(self, paper_net):
        log = EventLog()
        injector = FaultInjector(paper_net, observer=log)
        injector.apply(FaultEvent(0.1, "link_fail", tail=1, head=2))
        injector.apply(FaultEvent(0.9, "link_recover", tail=1, head=2))
        kinds = [event["kind"] for event in log.events]
        assert kinds == ["link_fail", "link_recover"]
        assert injector.applied == 2
