"""Versioned fault-schedule serialization and member-churn events
(repro.faults.plan format 2, repro.faults.injector membership replay)."""

from __future__ import annotations

import json

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    MEMBER_KINDS,
    SCHEDULE_FORMAT,
    FaultEvent,
    FaultPlan,
    generate_member_churn,
    generate_plan,
)
from repro.topology.reference import paper_figure1_network


class TestScheduleFormat:
    def test_to_json_stamps_the_current_format(self):
        plan = generate_plan(paper_figure1_network(), seed=4, num_faults=5)
        document = json.loads(plan.to_json())
        assert document["format"] == SCHEDULE_FORMAT == 2

    def test_format1_documents_still_decode(self):
        # Regression: schedules serialized before the format field existed
        # (PR 4) carried no "format" key — they must keep loading.
        plan = generate_plan(paper_figure1_network(), seed=4, num_faults=5)
        document = json.loads(plan.to_json())
        del document["format"]
        assert FaultPlan.from_json(json.dumps(document)) == plan

    def test_bad_format_values_are_rejected(self):
        for fmt in ("two", 0, None):
            with pytest.raises(ValueError):
                FaultPlan.from_json(json.dumps({"format": fmt, "events": []}))

    def test_unknown_kind_errors_by_default(self):
        document = {
            "format": SCHEDULE_FORMAT,
            "events": [{"at": 0.5, "kind": "solar_flare"}],
        }
        with pytest.raises(ValueError, match="solar_flare"):
            FaultPlan.from_json(json.dumps(document))

    def test_unknown_kind_can_be_dropped(self):
        document = {
            "format": SCHEDULE_FORMAT,
            "events": [
                {"at": 0.2, "kind": "worker_crash"},
                {"at": 0.5, "kind": "solar_flare"},
            ],
        }
        plan = FaultPlan.from_json(json.dumps(document), on_unknown="drop")
        assert [e.kind for e in plan.events] == ["worker_crash"]

    def test_on_unknown_is_validated(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("{}", on_unknown="ignore")

    def test_member_churn_round_trips(self):
        churn = generate_member_churn(
            paper_figure1_network(), seed=8, num_groups=2, num_events=6
        )
        assert churn.events
        assert all(e.kind in MEMBER_KINDS for e in churn.events)
        assert FaultPlan.from_json(churn.to_json()) == churn

    def test_generate_plan_schedule_unchanged_by_member_kinds(self):
        # generate_plan draws kinds by index: adding member churn as a
        # *separate* generator must not reshuffle seeded fault plans.
        plan = generate_plan(paper_figure1_network(), seed=4, num_faults=5)
        assert all(e.kind not in MEMBER_KINDS for e in plan.events)


class TestInjectorMembership:
    def test_member_events_are_recorded_not_applied(self):
        net = paper_figure1_network()
        injector = FaultInjector(net)
        event = FaultEvent(0.5, "member_join", node=3, amount=1.0)
        injector.apply(event)
        assert injector.membership_events == [event]
        assert injector.pristine  # the network itself is untouched
        view = injector.network_view()
        assert view.num_links == net.num_links

    def test_membership_hook_is_invoked(self):
        injector = FaultInjector(paper_figure1_network())
        seen: list[FaultEvent] = []
        injector.membership_hook = seen.append
        join = FaultEvent(0.2, "member_join", node=2, amount=0.0)
        leave = FaultEvent(0.6, "member_leave", node=2, amount=0.0)
        injector.apply(join)
        injector.apply(leave)
        assert seen == [join, leave]
        assert injector.membership_events == [join, leave]

    def test_fault_events_do_not_reach_the_hook(self):
        injector = FaultInjector(paper_figure1_network())
        seen: list[FaultEvent] = []
        injector.membership_hook = seen.append
        injector.apply(FaultEvent(0.1, "link_fail", tail=1, head=2))
        assert seen == []
