"""Tests for the chaos soak harness (repro.faults.chaos)."""

from __future__ import annotations

from repro.faults.chaos import ChaosSoak, SoakReport
from repro.verify.corpus import iter_corpus


class TestSoakReport:
    def test_ok_iff_no_violations(self):
        report = SoakReport(seed=0, duration=1.0)
        assert report.ok
        report.add_violation("boom")
        assert not report.ok

    def test_stored_violations_are_capped_but_counted(self):
        report = SoakReport(seed=0, duration=1.0)
        for index in range(SoakReport.MAX_STORED_VIOLATIONS + 50):
            report.add_violation(f"violation {index}")
        assert report.violations_total == SoakReport.MAX_STORED_VIOLATIONS + 50
        assert len(report.violations) == SoakReport.MAX_STORED_VIOLATIONS
        rendered = report.format()
        assert f"{SoakReport.MAX_STORED_VIOLATIONS + 50}" in rendered
        assert "first 200 shown" in rendered

    def test_format_mentions_the_headline_counts(self):
        report = SoakReport(seed=9, duration=30.0, queries=100, served_fresh=90)
        rendered = report.format()
        assert "seed=9" in rendered
        assert "100 queries" in rendered
        assert "all invariants held" in rendered


class TestChaosSoak:
    def test_short_clean_soak_holds_all_invariants(self, paper_net):
        soak = ChaosSoak(
            paper_net, seed=7, duration=1.5, workers=2, num_faults=8
        )
        report = soak.run()
        assert report.ok, "\n".join(report.violations)
        assert report.queries > 0
        assert report.served_fresh > 0
        assert sum(report.faults_applied.values()) >= 8
        assert report.recovery_pairs_checked > 0
        # The drill must exercise a full breaker cycle.
        transitions = report.breaker_transitions
        assert ("closed", "open") in transitions
        assert ("half-open", "closed") in transitions

    def test_soak_is_deterministic_in_plan(self, paper_net):
        a = ChaosSoak(paper_net, seed=13, duration=0.5, num_faults=6)
        b = ChaosSoak(paper_net, seed=13, duration=0.5, num_faults=6)
        assert a.plan.to_json() == b.plan.to_json()

    def test_cost_perturbation_is_caught_and_persisted(self, paper_net, tmp_path):
        corpus = tmp_path / "corpus"
        soak = ChaosSoak(
            paper_net,
            seed=3,
            duration=0.8,
            workers=2,
            num_faults=4,
            cost_perturbation=0.125,
            corpus_dir=corpus,
        )
        report = soak.run()
        assert not report.ok
        assert any("certificate" in v for v in report.violations)
        assert report.persisted, "a shrunk repro must be saved"
        cases = iter_corpus(corpus)
        assert len(cases) == 1
        assert len(cases[0].scenario.queries) == 1  # shrunk to one query

    def test_incremental_soak_parity_probes_hold(self, paper_net):
        soak = ChaosSoak(
            paper_net,
            seed=11,
            duration=1.0,
            workers=2,
            num_faults=8,
            incremental=True,
        )
        report = soak.run()
        assert report.ok, "\n".join(report.violations)
        assert report.incremental
        # Every network-resource fault triggered a probe, none diverged.
        assert report.parity_checks > 0
        assert report.parity_mismatches == 0
        # The delta layer actually carried load (recoveries of resources
        # dark at build time still legitimately rebuild).
        assert report.cache_patches > 0
        probes = report.event_log.of_kind("parity_check")
        assert len(probes) == report.parity_checks
        assert all(p["ok"] for p in probes)
        assert any(p["mode"] == "patched" for p in probes)
        # The byte-identical post-recovery invariant still holds.
        assert report.recovery_pairs_checked > 0
        assert "parity probe" in report.format()

    def test_event_log_audits_every_fault(self, paper_net):
        soak = ChaosSoak(paper_net, seed=5, duration=0.5, num_faults=5)
        report = soak.run()
        assert report.ok, "\n".join(report.violations)
        assert report.event_log is not None
        summary = report.event_log.summary()
        # Every plan event is audited; the breaker drill logs a few extra
        # injected exceptions on top.
        for kind, count in report.faults_applied.items():
            assert summary.get(kind, 0) >= count
        assert sum(summary.values()) == soak.injector.applied
