"""Unit tests for the flat-array Dijkstra kernel and its scratch buffers."""

import math
import random
import threading

import pytest

from repro.shortestpath.bellman_ford import bellman_ford
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.flat import ScratchBuffers, ScratchPool, flat_dijkstra
from repro.shortestpath.structures import GraphBuilder


def diamond():
    """0 -> {1, 2} -> 3 with a cheaper upper branch."""
    b = GraphBuilder(4)
    b.add_edge(0, 1, 1.0, tag=1)
    b.add_edge(0, 2, 2.0, tag=2)
    b.add_edge(1, 3, 1.0, tag=3)
    b.add_edge(2, 3, 0.5, tag=4)
    return b.build()


def random_graph(trial, max_nodes=40):
    rng = random.Random(trial)
    n = rng.randint(2, max_nodes)
    b = GraphBuilder(n)
    for _ in range(rng.randint(0, 5 * n)):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.uniform(0, 10))
    return b.build()


class TestFlatKernel:
    def test_distances_and_parents(self):
        run = flat_dijkstra(diamond(), 0)
        assert list(run.dist) == [0.0, 1.0, 2.0, 2.0]
        assert run.parent[3] == 1
        assert run.parent_tag[3] == 3

    def test_unreachable_is_inf(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        run = flat_dijkstra(b.build(), 0)
        assert run.dist[2] == math.inf
        assert run.stopped_at == -1

    def test_multi_source(self):
        b = GraphBuilder(4)
        b.add_edge(0, 2, 5.0)
        b.add_edge(1, 2, 1.0)
        b.add_edge(2, 3, 1.0)
        run = flat_dijkstra(b.build(), [0, 1])
        assert list(run.dist) == [0.0, 0.0, 1.0, 2.0]

    def test_early_stop_at_target(self):
        b = GraphBuilder(100)
        for i in range(99):
            b.add_edge(i, i + 1, 1.0)
        run = flat_dijkstra(b.build(), 0, target=2)
        assert run.dist[2] == 2.0
        assert run.stopped_at == 2
        assert run.settled <= 4

    def test_targets_stop_at_minimum_member(self):
        # 0 -> 1 (1.0), 0 -> 2 (3.0): among {1, 2}, node 1 settles first.
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        b.add_edge(0, 2, 3.0)
        run = flat_dijkstra(b.build(), 0, targets=[1, 2])
        assert run.stopped_at == 1
        assert run.dist[1] == 1.0

    def test_targets_unreachable_leaves_stopped_at_unset(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        run = flat_dijkstra(b.build(), 0, targets=[2])
        assert run.stopped_at == -1

    def test_target_and_targets_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            flat_dijkstra(diamond(), 0, target=3, targets=[3])

    def test_heap_stats_report_lazy_deletion(self):
        run = flat_dijkstra(diamond(), 0)
        assert set(run.heap_stats) == {"pushes", "pops", "stale"}
        assert run.heap_stats["pushes"] >= run.heap_stats["pops"]

    @pytest.mark.parametrize("trial", range(20))
    def test_agrees_with_bellman_ford(self, trial):
        g = random_graph(trial)
        reference = bellman_ford(g, 0).dist
        assert list(flat_dijkstra(g, 0).dist) == pytest.approx(reference)

    @pytest.mark.parametrize("trial", range(10))
    def test_agrees_with_binary_heap_exactly(self, trial):
        """Same distances AND same parent forest — shared tie-breaking."""
        g = random_graph(trial)
        flat = flat_dijkstra(g, 0)
        binary = dijkstra(g, 0, heap="binary")
        assert list(flat.dist) == list(binary.dist)
        assert list(flat.parent) == list(binary.parent)
        assert list(flat.parent_tag) == list(binary.parent_tag)

    def test_dispatch_through_dijkstra_entry_point(self):
        run = dijkstra(diamond(), 0, heap="flat")
        assert list(run.dist) == [0.0, 1.0, 2.0, 2.0]
        assert "stale" in run.heap_stats


class TestScratchReuse:
    def test_second_query_sees_pristine_state(self):
        scratch = ScratchBuffers(4)
        g = diamond()
        flat_dijkstra(g, 0, scratch=scratch)
        # Re-query from a different source: stale entries from the first
        # run must not leak into the second run's results.
        run = flat_dijkstra(g, 1, scratch=scratch)
        assert list(run.dist) == [math.inf, 0.0, math.inf, 1.0]
        assert run.parent[0] == -1

    def test_reset_touches_only_previous_query(self):
        b = GraphBuilder(1000)
        b.add_edge(0, 1, 1.0)
        scratch = ScratchBuffers(1000)
        flat_dijkstra(b.build(), 0, scratch=scratch)
        assert sorted(scratch.touched) == [0, 1]

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            flat_dijkstra(diamond(), 0, scratch=ScratchBuffers(3))

    def test_private_buffers_survive_other_queries(self):
        g = diamond()
        first = flat_dijkstra(g, 0)  # scratch=None -> private buffers
        flat_dijkstra(g, 1)
        assert list(first.dist) == [0.0, 1.0, 2.0, 2.0]

    def test_pool_reuses_buffers_per_size(self):
        pool = ScratchPool()
        assert pool.get(4) is pool.get(4)
        assert pool.get(4) is not pool.get(5)

    def test_pool_is_per_thread(self):
        pool = ScratchPool()
        mine = pool.get(4)
        seen = []

        def worker():
            seen.append(pool.get(4))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen[0] is not mine

    def test_pool_accepted_by_kernel(self):
        pool = ScratchPool()
        g = diamond()
        run = flat_dijkstra(g, 0, scratch=pool)
        assert list(run.dist) == [0.0, 1.0, 2.0, 2.0]
        assert run.dist is pool.get(4).dist


class TestValidation:
    def test_source_out_of_range(self):
        with pytest.raises(IndexError):
            flat_dijkstra(diamond(), 7)

    def test_target_out_of_range(self):
        with pytest.raises(IndexError):
            flat_dijkstra(diamond(), 0, target=9)

    def test_targets_member_out_of_range(self):
        with pytest.raises(IndexError):
            flat_dijkstra(diamond(), 0, targets=[9])

    def test_no_sources(self):
        with pytest.raises(ValueError):
            flat_dijkstra(diamond(), [])

    def test_negative_size_scratch(self):
        with pytest.raises(ValueError):
            ScratchBuffers(-1)
