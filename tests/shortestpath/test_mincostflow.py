"""Unit tests for the min-cost flow substrate."""

import pytest

from repro.shortestpath.mincostflow import MinCostFlow


class TestBasics:
    def test_single_arc(self):
        f = MinCostFlow(2)
        f.add_arc(0, 1, capacity=3, cost=2.0)
        result = f.solve(0, 1, 2)
        assert result.flow_sent == 2
        assert result.total_cost == pytest.approx(4.0)

    def test_parallel_paths_cheapest_first(self):
        f = MinCostFlow(4)
        f.add_arc(0, 1, 1, 1.0)
        f.add_arc(1, 3, 1, 1.0)
        f.add_arc(0, 2, 1, 5.0)
        f.add_arc(2, 3, 1, 5.0)
        one = MinCostFlow(4)
        one.add_arc(0, 1, 1, 1.0)
        one.add_arc(1, 3, 1, 1.0)
        one.add_arc(0, 2, 1, 5.0)
        one.add_arc(2, 3, 1, 5.0)
        assert one.solve(0, 3, 1).total_cost == pytest.approx(2.0)
        assert f.solve(0, 3, 2).total_cost == pytest.approx(12.0)

    def test_saturation_partial_flow(self):
        f = MinCostFlow(2)
        f.add_arc(0, 1, capacity=1, cost=1.0)
        result = f.solve(0, 1, 5)
        assert result.flow_sent == 1

    def test_disconnected(self):
        f = MinCostFlow(3)
        f.add_arc(0, 1, 1, 1.0)
        result = f.solve(0, 2, 1)
        assert result.flow_sent == 0
        assert result.total_cost == 0.0

    def test_zero_amount(self):
        f = MinCostFlow(2)
        f.add_arc(0, 1, 1, 1.0)
        assert f.solve(0, 1, 0).flow_sent == 0

    def test_arc_flow_readback(self):
        f = MinCostFlow(3)
        cheap = f.add_arc(0, 1, 2, 1.0)
        through = f.add_arc(1, 2, 2, 1.0)
        direct = f.add_arc(0, 2, 1, 10.0)
        result = f.solve(0, 2, 2)
        assert result.arc_flow[cheap] == 2
        assert result.arc_flow[through] == 2
        assert result.arc_flow[direct] == 0

    def test_rerouting_via_residual_arcs(self):
        """Classic case where the second augmentation must push flow back
        across the first path's arc."""
        f = MinCostFlow(4)
        a = f.add_arc(0, 1, 1, 1.0)
        b = f.add_arc(1, 3, 1, 1.0)
        c = f.add_arc(0, 2, 1, 2.0)
        d = f.add_arc(2, 3, 1, 2.0)
        e = f.add_arc(1, 2, 1, 0.0)  # the tempting shortcut
        # 1 unit: 0-1-2-3? cost 1+0+2 = 3 vs 0-1-3 = 2 -> takes 0-1-3.
        # 2 units: optimal is {0-1-3, 0-2-3} total 6; the naive greedy that
        # first took 0-1-2-3 would need the residual of arc e.
        result = f.solve(0, 3, 2)
        assert result.flow_sent == 2
        assert result.total_cost == pytest.approx(6.0)
        assert result.arc_flow[e] == 0

    def test_validation(self):
        f = MinCostFlow(2)
        with pytest.raises(IndexError):
            f.add_arc(0, 5, 1, 1.0)
        with pytest.raises(ValueError):
            f.add_arc(0, 1, -1, 1.0)
        with pytest.raises(ValueError):
            f.add_arc(0, 1, 1, -1.0)
        with pytest.raises(ValueError):
            f.add_arc(0, 1, 1, float("inf"))
        with pytest.raises(ValueError):
            f.solve(0, 1, -1)
        with pytest.raises(IndexError):
            f.solve(0, 9, 1)

    def test_add_node(self):
        f = MinCostFlow(1)
        assert f.add_node() == 1
        f.add_arc(0, 1, 1, 1.0)
        assert f.solve(0, 1, 1).flow_sent == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("trial", range(20))
    def test_two_unit_flows_match_exhaustive(self, trial):
        """On tiny random DAG-ish graphs, compare against exhaustive
        enumeration of edge-disjoint path pairs."""
        import itertools
        import random

        rng = random.Random(trial)
        n = rng.randint(3, 6)
        arcs = []
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.5:
                    arcs.append((u, v, rng.uniform(1, 5)))
        f = MinCostFlow(n)
        for u, v, c in arcs:
            f.add_arc(u, v, 1, c)
        result = f.solve(0, n - 1, 2)

        # Exhaustive: all simple paths 0 -> n-1, pick cheapest disjoint pair.
        def paths_from(node, used_arcs, visited):
            if node == n - 1:
                yield []
                return
            for i, (u, v, c) in enumerate(arcs):
                if u == node and i not in used_arcs and v not in visited:
                    for rest in paths_from(v, used_arcs | {i}, visited | {v}):
                        yield [i] + rest

        all_paths = list(paths_from(0, frozenset(), frozenset({0})))
        best = None
        for p1, p2 in itertools.combinations(all_paths, 2):
            if set(p1) & set(p2):
                continue
            cost = sum(arcs[i][2] for i in p1 + p2)
            if best is None or cost < best:
                best = cost
        if best is None:
            assert result.flow_sent < 2
        else:
            assert result.flow_sent == 2
            # Flow may use non-simple walks; it can only be cheaper-or-equal.
            assert result.total_cost <= best + 1e-9
