"""Unit tests for Bellman–Ford (classic rounds and SPFA)."""

import math
import random

import pytest

from repro.shortestpath.bellman_ford import bellman_ford, spfa
from repro.shortestpath.structures import GraphBuilder

VARIANTS = [bellman_ford, spfa]


def chain(n: int, weight: float = 1.0):
    b = GraphBuilder(n)
    for i in range(n - 1):
        b.add_edge(i, i + 1, weight)
    return b.build()


@pytest.mark.parametrize("run", VARIANTS, ids=["classic", "spfa"])
class TestShared:
    def test_chain_distances(self, run):
        result = run(chain(5), 0)
        assert result.dist == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert not result.has_negative_cycle

    def test_unreachable(self, run):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        result = run(b.build(), 0)
        assert result.dist[2] == math.inf

    def test_source_out_of_range(self, run):
        with pytest.raises(IndexError):
            run(chain(3), 5)

    def test_parent_chain(self, run):
        result = run(chain(4), 0)
        assert result.parent == [-1, 0, 1, 2]

    def test_zero_weights(self, run):
        result = run(chain(3, weight=0.0), 0)
        assert result.dist == [0.0, 0.0, 0.0]

    def test_single_node(self, run):
        result = run(GraphBuilder(1).build(), 0)
        assert result.dist == [0.0]
        assert not result.has_negative_cycle


class TestNegativeEdges:
    """The WDM model is nonnegative, but the substrate handles more.

    StaticGraph rejects negative weights at build time by design (the WDM
    model has none), so negative-cycle detection is exercised through a
    directly constructed StaticGraph.
    """

    def _graph_with_weights(self, n, edges):
        # Bypass GraphBuilder's nonnegativity check deliberately.
        from array import array

        from repro.shortestpath.structures import StaticGraph

        counts = [0] * (n + 1)
        for t, _h, _w in edges:
            counts[t + 1] += 1
        for i in range(1, n + 1):
            counts[i] += counts[i - 1]
        heads = array("q", [0] * len(edges))
        weights = array("d", [0.0] * len(edges))
        tags = array("q", [-1] * len(edges))
        eids = array("q", [0] * len(edges))
        cursor = counts[:]
        for eid, (t, h, w) in enumerate(edges):
            slot = cursor[t]
            cursor[t] += 1
            heads[slot] = h
            weights[slot] = w
            eids[slot] = eid
        return StaticGraph(n, array("q", counts), heads, weights, tags, eids)

    def test_negative_edge_no_cycle(self):
        g = self._graph_with_weights(3, [(0, 1, 5.0), (1, 2, -3.0)])
        for run in VARIANTS:
            result = run(g, 0)
            assert result.dist == [0.0, 5.0, 2.0]
            assert not result.has_negative_cycle

    def test_negative_cycle_detected(self):
        g = self._graph_with_weights(3, [(0, 1, 1.0), (1, 2, -2.0), (2, 1, 1.0)])
        for run in VARIANTS:
            assert run(g, 0).has_negative_cycle

    def test_unreachable_negative_cycle_ignored(self):
        g = self._graph_with_weights(
            4, [(0, 1, 1.0), (2, 3, -5.0), (3, 2, 1.0)]
        )
        for run in VARIANTS:
            result = run(g, 0)
            assert not result.has_negative_cycle
            assert result.dist[1] == 1.0


class TestAgainstEachOther:
    @pytest.mark.parametrize("trial", range(20))
    def test_random_agreement(self, trial):
        rng = random.Random(1000 + trial)
        n = rng.randint(2, 30)
        b = GraphBuilder(n)
        for _ in range(rng.randint(0, 4 * n)):
            b.add_edge(rng.randrange(n), rng.randrange(n), rng.uniform(0, 10))
        g = b.build()
        assert bellman_ford(g, 0).dist == pytest.approx(spfa(g, 0).dist)

    def test_early_exit_rounds(self):
        # A star graph settles in one productive round + one quiet round.
        b = GraphBuilder(6)
        for i in range(1, 6):
            b.add_edge(0, i, 1.0)
        result = bellman_ford(b.build(), 0)
        assert result.rounds <= 2
