"""Unit tests for the warm-started, repairable Dijkstra run."""

import math
import random

import pytest

from repro.shortestpath.flat import WarmRun, flat_dijkstra
from repro.shortestpath.structures import GraphBuilder

INF = math.inf


def diamond():
    """0 -> {1, 2} -> 3 with a cheaper upper branch."""
    b = GraphBuilder(4)
    b.add_edge(0, 1, 1.0, tag=1)
    b.add_edge(0, 2, 2.0, tag=2)
    b.add_edge(1, 3, 1.0, tag=3)
    b.add_edge(2, 3, 0.5, tag=4)
    return b.build()


def random_graph(trial, max_nodes=30):
    rng = random.Random(trial)
    n = rng.randint(2, max_nodes)
    b = GraphBuilder(n)
    for _ in range(rng.randint(0, 5 * n)):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.uniform(0, 10))
    return b.build()


def edge_slot(graph, tail, head):
    """CSR slot of the (unique) tail -> head edge."""
    offsets, heads, _, _ = graph.csr()
    for i in range(offsets[tail], offsets[tail + 1]):
        if heads[i] == head:
            return i
    raise AssertionError(f"no edge {tail} -> {head}")


def reverse_adjacency(graph):
    """``in_edges(head) -> [(tail, slot), ...]`` as the delta layer provides."""
    offsets, heads, _, _ = graph.csr()
    rev = {v: [] for v in range(graph.num_nodes)}
    for u in range(graph.num_nodes):
        for i in range(offsets[u], offsets[u + 1]):
            rev[heads[i]].append((u, i))
    return rev.__getitem__


def assert_matches_cold(warm, graph, sources):
    cold = flat_dijkstra(graph, sources)
    assert list(warm.dist) == list(cold.dist)
    assert list(warm.parent) == list(cold.parent)
    assert list(warm.parent_tag) == list(cold.parent_tag)


class TestWarmRun:
    def test_full_run_matches_cold_kernel(self):
        g = diamond()
        warm = WarmRun(g, 0)
        warm.run()
        assert warm.exhausted
        assert_matches_cold(warm, g, 0)

    def test_settled_target_is_free(self):
        g = diamond()
        warm = WarmRun(g, 0)
        assert warm.run(target=3) == 3
        pops = warm.pops
        assert warm.run(target=3) == 3
        assert warm.pops == pops  # answered from state, no new work

    def test_resume_after_partial_run(self):
        g = diamond()
        warm = WarmRun(g, 0)
        assert warm.run(target=1) == 1
        assert not warm.is_settled(3)
        warm.run()
        assert_matches_cold(warm, g, 0)

    def test_targets_return_min_dist_member(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        b.add_edge(0, 2, 3.0)
        warm = WarmRun(b.build(), 0)
        assert warm.run(targets=[1, 2]) == 1
        # The other member is reachable but must not have settled yet.
        assert not warm.is_settled(2)

    def test_targets_after_exhaustion_pick_settled_best(self):
        g = diamond()
        warm = WarmRun(g, 0)
        warm.run()
        assert warm.run(targets=[2, 3]) == 2  # dist 2.0 ties, lower id wins

    def test_unreachable_target_returns_minus_one(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        warm = WarmRun(b.build(), 0)
        assert warm.run(target=2) == -1
        assert warm.exhausted

    def test_target_and_targets_are_mutually_exclusive(self):
        warm = WarmRun(diamond(), 0)
        with pytest.raises(ValueError):
            warm.run(target=3, targets=[3])

    def test_multi_source_matches_cold_kernel(self):
        b = GraphBuilder(4)
        b.add_edge(0, 2, 5.0)
        b.add_edge(1, 2, 1.0)
        b.add_edge(2, 3, 1.0)
        g = b.build()
        warm = WarmRun(g, [0, 1])
        warm.run()
        assert_matches_cold(warm, g, [0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmRun(diamond(), [])
        with pytest.raises(IndexError):
            WarmRun(diamond(), 9)

    def test_counters_and_result_views(self):
        warm = WarmRun(diamond(), 0)
        warm.run()
        counters = warm.counters()
        assert set(counters) == {
            "pushes", "pops", "stale", "relaxations", "repairs"
        }
        result = warm.result(stopped_at=3)
        assert result.dist is warm.dist  # live view, not a copy
        assert result.stopped_at == 3


class TestRepair:
    def test_repair_matches_cold_run_on_masked_graph(self):
        g = diamond()
        warm = WarmRun(g, 0)
        warm.run()
        slot = edge_slot(g, 1, 3)
        g.csr()[2][slot] = INF
        affected = warm.repair([(1, 3)], reverse_adjacency(g))
        assert affected == [3]
        warm.run()
        assert_matches_cold(warm, g, 0)
        assert warm.dist[3] == 2.5  # now via 2, not 1
        assert warm.parent[3] == 2

    def test_masking_non_tree_edge_is_a_noop(self):
        g = diamond()
        warm = WarmRun(g, 0)
        warm.run()
        # 2 -> 3 is not the tree edge (3's parent is 1); no damage.
        slot = edge_slot(g, 2, 3)
        g.csr()[2][slot] = INF
        assert warm.repair([(2, 3)], reverse_adjacency(g)) == []
        assert_matches_cold(warm, g, 0)

    def test_repair_cuts_whole_subtree(self):
        # 0 -> 1 -> 2 -> 3 chain: masking 0 -> 1 orphans everything.
        b = GraphBuilder(4)
        for i in range(3):
            b.add_edge(i, i + 1, 1.0)
        g = b.build()
        warm = WarmRun(g, 0)
        warm.run()
        slot = edge_slot(g, 0, 1)
        g.csr()[2][slot] = INF
        affected = warm.repair([(0, 1)], reverse_adjacency(g))
        assert sorted(affected) == [1, 2, 3]
        warm.run()
        assert list(warm.dist) == [0.0, INF, INF, INF]

    @pytest.mark.parametrize("trial", range(25))
    def test_repaired_run_identical_to_cold_run(self, trial):
        """The tie-break parity invariant, on random graphs and masks."""
        rng = random.Random(1000 + trial)
        g = random_graph(trial)
        warm = WarmRun(g, 0)
        warm.run()
        offsets, heads, weights, _ = g.csr()
        finite = [
            (u, i)
            for u in range(g.num_nodes)
            for i in range(offsets[u], offsets[u + 1])
            if weights[i] != INF
        ]
        if not finite:
            return
        masked = []
        for u, i in rng.sample(finite, min(3, len(finite))):
            weights[i] = INF
            masked.append((u, heads[i]))
        warm.repair(masked, reverse_adjacency(g))
        warm.run()
        assert_matches_cold(warm, g, 0)

    def test_repeated_repairs_accumulate(self):
        g = diamond()
        warm = WarmRun(g, 0)
        warm.run()
        # (1, 3) is the tree edge; after that repair (2, 3) becomes it.
        for tail, head in ((1, 3), (2, 3)):
            g.csr()[2][edge_slot(g, tail, head)] = INF
            warm.repair([(tail, head)], reverse_adjacency(g))
            warm.run()
            assert_matches_cold(warm, g, 0)
        assert warm.dist[3] == INF
        assert warm.repairs == 2
