"""Unit tests for the CSR graph structures."""

import pytest

from repro.shortestpath.structures import GraphBuilder, StaticGraph


def build_triangle() -> StaticGraph:
    b = GraphBuilder(3)
    b.add_edge(0, 1, 1.0, tag=10)
    b.add_edge(1, 2, 2.0, tag=11)
    b.add_edge(2, 0, 3.0, tag=12)
    return b.build()


class TestGraphBuilder:
    def test_empty_graph(self):
        g = GraphBuilder(0).build()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_nodes_without_edges(self):
        g = GraphBuilder(4).build()
        assert g.num_nodes == 4
        assert all(g.out_degree(v) == 0 for v in range(4))

    def test_add_node_appends(self):
        b = GraphBuilder(2)
        assert b.add_node() == 2
        assert b.add_node() == 3
        assert b.build().num_nodes == 4

    def test_edge_ids_sequential(self):
        b = GraphBuilder(2)
        assert b.add_edge(0, 1, 1.0) == 0
        assert b.add_edge(1, 0, 1.0) == 1

    def test_rejects_out_of_range_tail(self):
        b = GraphBuilder(2)
        with pytest.raises(IndexError):
            b.add_edge(2, 0, 1.0)

    def test_rejects_out_of_range_head(self):
        b = GraphBuilder(2)
        with pytest.raises(IndexError):
            b.add_edge(0, -1, 1.0)

    def test_rejects_negative_weight(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError):
            b.add_edge(0, 1, -0.5)

    def test_rejects_infinite_weight(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError):
            b.add_edge(0, 1, float("inf"))

    def test_rejects_nan_weight(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError):
            b.add_edge(0, 1, float("nan"))

    def test_parallel_edges_allowed(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 1.0, tag=1)
        b.add_edge(0, 1, 2.0, tag=2)
        g = b.build()
        assert g.num_edges == 2
        assert sorted(w for _, w, _ in g.neighbors(0)) == [1.0, 2.0]

    def test_self_loop_allowed(self):
        b = GraphBuilder(1)
        b.add_edge(0, 0, 1.0)
        g = b.build()
        assert list(g.neighbors(0)) == [(0, 1.0, -1)]


class TestStaticGraph:
    def test_neighbors_and_tags(self):
        g = build_triangle()
        assert list(g.neighbors(0)) == [(1, 1.0, 10)]
        assert list(g.neighbors(1)) == [(2, 2.0, 11)]
        assert list(g.neighbors(2)) == [(0, 3.0, 12)]

    def test_out_degree(self):
        g = build_triangle()
        assert [g.out_degree(v) for v in range(3)] == [1, 1, 1]

    def test_edges_enumeration(self):
        g = build_triangle()
        assert sorted(g.edges()) == [
            (0, 1, 1.0, 10),
            (1, 2, 2.0, 11),
            (2, 0, 3.0, 12),
        ]

    def test_insertion_order_within_node(self):
        b = GraphBuilder(3)
        b.add_edge(0, 2, 5.0)
        b.add_edge(0, 1, 1.0)
        g = b.build()
        assert [h for h, _, _ in g.neighbors(0)] == [2, 1]

    def test_reverse(self):
        g = build_triangle().reverse()
        assert sorted(g.edges()) == [
            (0, 2, 3.0, 12),
            (1, 0, 1.0, 10),
            (2, 1, 2.0, 11),
        ]

    def test_total_weight(self):
        assert build_triangle().total_weight() == pytest.approx(6.0)

    def test_node_range_check(self):
        g = build_triangle()
        with pytest.raises(IndexError):
            list(g.neighbors(3))
        with pytest.raises(IndexError):
            g.out_degree(-1)

    def test_neighbor_slices_match_neighbors(self):
        g = build_triangle()
        for v in range(3):
            slots, heads, weights, tags = g.neighbor_slices(v)
            via_slices = [(heads[i], weights[i], tags[i]) for i in slots]
            assert via_slices == list(g.neighbors(v))
