"""Unit tests for the Dial bucket-queue kernel and lattice detection."""

import math
import random

import pytest

from repro.shortestpath.bucket import bucket_dijkstra
from repro.shortestpath.flat import ScratchBuffers, flat_dijkstra
from repro.shortestpath.structures import (
    MAX_LATTICE_SCALE,
    GraphBuilder,
    _detect_lattice_scale,
)


def lattice_graph(trial, max_nodes=40):
    """A random graph whose weights live on the quarter-integer lattice."""
    rng = random.Random(trial)
    n = rng.randint(2, max_nodes)
    b = GraphBuilder(n)
    for _ in range(rng.randint(0, 5 * n)):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.randint(0, 16) / 4)
    return b.build()


def assert_identical(a, b):
    assert list(a.dist) == list(b.dist)
    assert list(a.parent) == list(b.parent)
    assert list(a.parent_tag) == list(b.parent_tag)
    assert a.stopped_at == b.stopped_at
    assert a.settled == b.settled


class TestLatticeDetection:
    def test_quarter_lattice_detected(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 0.25)
        b.add_edge(1, 2, 1.5)
        assert b.build().lattice_scale() == 4

    def test_integer_weights_scale_one(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 3.0)
        assert b.build().lattice_scale() == 1

    def test_off_lattice_rejected(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 0.1)  # no power-of-two scale makes 0.1 integral
        assert b.build().lattice_scale() is None

    def test_scale_cap(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 1.0 / (2 * MAX_LATTICE_SCALE))
        assert b.build().lattice_scale() is None

    def test_span_cap(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 2.0**21)
        assert b.build().lattice_scale() is None

    def test_empty_graph_is_lattice(self):
        assert GraphBuilder(3).build().lattice_scale() == 1

    def test_memoized(self):
        g = GraphBuilder(2).build()
        assert g.lattice_scale() is g.lattice_scale()

    def test_detect_rejects_inf(self):
        assert _detect_lattice_scale([1.0, math.inf], 2) is None


class TestBucketKernel:
    def test_marker_present_on_lattice(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 0.5)
        run = bucket_dijkstra(b.build(), 0)
        assert run.heap_stats["bucket_scale"] == 2

    def test_fallback_off_lattice(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 0.1)
        run = bucket_dijkstra(b.build(), 0)
        assert "bucket_scale" not in run.heap_stats
        assert run.dist[1] == pytest.approx(0.1)

    @pytest.mark.parametrize("trial", range(30))
    def test_byte_identical_to_flat(self, trial):
        g = lattice_graph(trial)
        assert_identical(bucket_dijkstra(g, 0), flat_dijkstra(g, 0))

    @pytest.mark.parametrize("trial", range(10))
    def test_target_early_stop_parity(self, trial):
        g = lattice_graph(trial)
        t = g.num_nodes - 1
        assert_identical(
            bucket_dijkstra(g, 0, target=t), flat_dijkstra(g, 0, target=t)
        )

    @pytest.mark.parametrize("trial", range(10))
    def test_targets_set_parity(self, trial):
        g = lattice_graph(trial)
        ts = list(range(1, g.num_nodes, 2))
        if not ts:
            return
        assert_identical(
            bucket_dijkstra(g, 0, targets=ts), flat_dijkstra(g, 0, targets=ts)
        )

    def test_multi_source_parity(self):
        g = lattice_graph(7)
        assert_identical(bucket_dijkstra(g, [0, 1]), flat_dijkstra(g, [0, 1]))

    def test_zero_weight_edges(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 0.0)
        b.add_edge(1, 2, 0.0)
        run = bucket_dijkstra(b.build(), 0)
        assert list(run.dist) == [0.0, 0.0, 0.0]
        assert run.heap_stats["bucket_scale"] == 1

    def test_scratch_reuse(self):
        g = lattice_graph(3)
        scratch = ScratchBuffers(g.num_nodes)
        first = list(bucket_dijkstra(g, 0, scratch=scratch).dist)
        assert list(bucket_dijkstra(g, 0, scratch=scratch).dist) == first

    def test_no_sources_rejected(self):
        with pytest.raises(ValueError):
            bucket_dijkstra(lattice_graph(1), [])

    def test_dispatch_through_dijkstra_entry_point(self):
        from repro.shortestpath.dijkstra import dijkstra

        g = lattice_graph(5)
        assert_identical(dijkstra(g, 0, heap="bucket"), bucket_dijkstra(g, 0))
