"""Unit tests for Dijkstra with pluggable heaps."""

import math
import random

import pytest

from repro.shortestpath.bellman_ford import bellman_ford
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.structures import GraphBuilder

HEAPS = ["binary", "pairing", "fibonacci"]


def diamond():
    """0 -> {1, 2} -> 3 with a cheaper upper branch."""
    b = GraphBuilder(4)
    b.add_edge(0, 1, 1.0, tag=1)
    b.add_edge(0, 2, 2.0, tag=2)
    b.add_edge(1, 3, 1.0, tag=3)
    b.add_edge(2, 3, 0.5, tag=4)
    return b.build()


@pytest.mark.parametrize("heap", HEAPS)
class TestDijkstraBasics:
    def test_distances(self, heap):
        run = dijkstra(diamond(), 0, heap=heap)
        assert run.dist == [0.0, 1.0, 2.0, 2.0]

    def test_parent_pointers(self, heap):
        run = dijkstra(diamond(), 0, heap=heap)
        assert run.parent[0] == -1
        assert run.parent[3] in (1, 2)  # both are optimal (cost 2.0 via 1)
        # Actually via 1: 1+1=2.0; via 2: 2+0.5=2.5 -> parent must be 1.
        assert run.parent[3] == 1

    def test_parent_tags_follow_edges(self, heap):
        run = dijkstra(diamond(), 0, heap=heap)
        assert run.parent_tag[1] == 1
        assert run.parent_tag[3] == 3

    def test_unreachable_is_inf(self, heap):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        run = dijkstra(b.build(), 0, heap=heap)
        assert run.dist[2] == math.inf
        assert not run.reachable(2)

    def test_single_node(self, heap):
        run = dijkstra(GraphBuilder(1).build(), 0, heap=heap)
        assert run.dist == [0.0]

    def test_early_stop_at_target(self, heap):
        # A long chain: stopping at node 2 must not settle the tail.
        b = GraphBuilder(100)
        for i in range(99):
            b.add_edge(i, i + 1, 1.0)
        run = dijkstra(b.build(), 0, target=2, heap=heap)
        assert run.dist[2] == 2.0
        assert run.settled <= 4  # 0, 1, 2 (+ slack for ties)

    def test_multi_source(self, heap):
        b = GraphBuilder(4)
        b.add_edge(0, 2, 5.0)
        b.add_edge(1, 2, 1.0)
        b.add_edge(2, 3, 1.0)
        run = dijkstra(b.build(), [0, 1], heap=heap)
        assert run.dist == [0.0, 0.0, 1.0, 2.0]

    def test_zero_weight_edges(self, heap):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 0.0)
        b.add_edge(1, 2, 0.0)
        run = dijkstra(b.build(), 0, heap=heap)
        assert run.dist == [0.0, 0.0, 0.0]

    def test_parallel_edges_pick_cheapest(self, heap):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 5.0, tag=1)
        b.add_edge(0, 1, 2.0, tag=2)
        run = dijkstra(b.build(), 0, heap=heap)
        assert run.dist[1] == 2.0
        assert run.parent_tag[1] == 2


class TestArgumentValidation:
    def test_source_out_of_range(self):
        with pytest.raises(IndexError):
            dijkstra(diamond(), 7)

    def test_target_out_of_range(self):
        with pytest.raises(IndexError):
            dijkstra(diamond(), 0, target=9)

    def test_no_sources(self):
        with pytest.raises(ValueError):
            dijkstra(diamond(), [])

    def test_unknown_heap_name(self):
        with pytest.raises(KeyError):
            dijkstra(diamond(), 0, heap="splay")

    def test_custom_heap_factory(self):
        from repro.shortestpath.heaps import BinaryHeap

        run = dijkstra(diamond(), 0, heap=BinaryHeap)
        assert run.dist == [0.0, 1.0, 2.0, 2.0]


class TestAgainstBellmanFord:
    @pytest.mark.parametrize("trial", range(25))
    def test_random_graphs_agree(self, trial):
        rng = random.Random(trial)
        n = rng.randint(2, 40)
        b = GraphBuilder(n)
        for _ in range(rng.randint(0, 5 * n)):
            b.add_edge(rng.randrange(n), rng.randrange(n), rng.uniform(0, 10))
        g = b.build()
        reference = bellman_ford(g, 0).dist
        for heap in HEAPS:
            assert dijkstra(g, 0, heap=heap).dist == pytest.approx(reference)

    def test_heap_stats_populated(self):
        run = dijkstra(diamond(), 0, heap="binary")
        assert run.heap_stats["pushes"] >= 1
        assert run.heap_stats["pops"] >= 1
        assert run.relaxations >= run.settled - 1
