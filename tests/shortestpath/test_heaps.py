"""Unit tests for the addressable heaps (binary / pairing / Fibonacci).

The three implementations share a protocol, so most tests are
parameterized over all of them; implementation-specific tests live in
``test_fibonacci.py``.
"""

import random

import pytest

from repro.shortestpath.fibonacci import FibonacciHeap
from repro.shortestpath.heaps import HEAP_FACTORIES, BinaryHeap, PairingHeap

ALL_HEAPS = [BinaryHeap, PairingHeap, FibonacciHeap]


@pytest.fixture(params=ALL_HEAPS, ids=lambda cls: cls.__name__)
def heap(request):
    return request.param()


class TestBasicOperations:
    def test_empty_len(self, heap):
        assert len(heap) == 0

    def test_pop_empty_raises(self, heap):
        with pytest.raises(IndexError):
            heap.pop()

    def test_push_pop_single(self, heap):
        heap.push("x", 3.0)
        assert len(heap) == 1
        assert "x" in heap
        assert heap.pop() == ("x", 3.0)
        assert len(heap) == 0
        assert "x" not in heap

    def test_pops_in_key_order(self, heap):
        for item, key in [("a", 5.0), ("b", 1.0), ("c", 3.0), ("d", 2.0)]:
            heap.push(item, key)
        popped = [heap.pop() for _ in range(4)]
        assert popped == [("b", 1.0), ("d", 2.0), ("c", 3.0), ("a", 5.0)]

    def test_duplicate_push_raises(self, heap):
        heap.push("x", 1.0)
        with pytest.raises(KeyError):
            heap.push("x", 2.0)

    def test_reinsert_after_pop(self, heap):
        heap.push("x", 1.0)
        heap.pop()
        heap.push("x", 2.0)
        assert heap.pop() == ("x", 2.0)

    def test_equal_keys_all_emerge(self, heap):
        for item in "abc":
            heap.push(item, 7.0)
        popped = {heap.pop()[0] for _ in range(3)}
        assert popped == {"a", "b", "c"}

    def test_key_of(self, heap):
        heap.push("x", 4.0)
        assert heap.key_of("x") == 4.0
        with pytest.raises(KeyError):
            heap.key_of("missing")


class TestDecreaseKey:
    def test_decrease_moves_to_front(self, heap):
        heap.push("a", 10.0)
        heap.push("b", 5.0)
        heap.decrease_key("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_decrease_to_same_key_allowed(self, heap):
        heap.push("a", 2.0)
        heap.decrease_key("a", 2.0)
        assert heap.pop() == ("a", 2.0)

    def test_increase_raises(self, heap):
        heap.push("a", 2.0)
        with pytest.raises(ValueError):
            heap.decrease_key("a", 3.0)

    def test_decrease_missing_raises(self, heap):
        with pytest.raises(KeyError):
            heap.decrease_key("ghost", 1.0)

    def test_many_decreases_on_one_item(self, heap):
        heap.push("a", 100.0)
        heap.push("b", 50.0)
        for key in (90.0, 70.0, 60.0, 40.0):
            heap.decrease_key("a", key)
        assert heap.pop() == ("a", 40.0)
        assert heap.pop() == ("b", 50.0)

    def test_decrease_deep_item(self, heap):
        # Build enough structure that the decreased item is not a root.
        for i in range(32):
            heap.push(i, float(i))
        heap.pop()  # forces consolidation in the Fibonacci heap
        heap.decrease_key(31, 0.5)
        assert heap.pop() == (31, 0.5)


class TestRandomizedAgainstSortedOracle:
    @pytest.mark.parametrize("factory_name", sorted(HEAP_FACTORIES))
    def test_interleaved_operations(self, factory_name):
        rng = random.Random(1234)
        heap = HEAP_FACTORIES[factory_name]()
        model: dict[int, float] = {}
        next_id = 0
        for _ in range(3000):
            op = rng.random()
            if op < 0.5 or not model:
                heap.push(next_id, rng.uniform(0, 1000))
                model[next_id] = heap.key_of(next_id)
                next_id += 1
            elif op < 0.8:
                item = rng.choice(list(model))
                new_key = model[item] - rng.uniform(0, 100)
                heap.decrease_key(item, new_key)
                model[item] = new_key
            else:
                item, key = heap.pop()
                expected_key = min(model.values())
                assert key == pytest.approx(expected_key)
                assert model[item] == pytest.approx(expected_key)
                del model[item]
        # Drain and confirm global ordering.
        drained = [heap.pop()[1] for _ in range(len(heap))]
        assert drained == sorted(drained)

    @pytest.mark.parametrize("factory_name", sorted(HEAP_FACTORIES))
    def test_heapsort(self, factory_name):
        rng = random.Random(99)
        values = [rng.uniform(-100, 100) for _ in range(500)]
        heap = HEAP_FACTORIES[factory_name]()
        for i, v in enumerate(values):
            heap.push(i, v)
        out = [heap.pop()[1] for _ in range(len(values))]
        assert out == sorted(values)


class TestOperationCounters:
    def test_counters_track_operations(self, heap):
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.decrease_key("b", 0.5)
        heap.pop()
        assert heap.pushes == 2
        assert heap.decreases == 1
        assert heap.pops == 1
