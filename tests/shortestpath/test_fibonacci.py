"""Fibonacci-heap–specific structural tests.

The shared-protocol behavior is covered in ``test_heaps.py``; these tests
exercise the internals that distinguish a Fibonacci heap: lazy melding,
consolidation on pop, and cascading cuts on decrease-key.
"""

import random

from repro.shortestpath.fibonacci import FibonacciHeap


def check_heap_invariants(heap: FibonacciHeap) -> None:
    """Walk the internal structure and verify the min-heap property."""
    if heap._min is None:
        assert len(heap) == 0
        return
    seen = set()

    def walk(node, parent_key):
        start = node
        while True:
            assert node.key >= parent_key
            assert id(node) not in seen, "node visited twice: corrupt links"
            seen.add(id(node))
            if node.child is not None:
                walk(node.child, node.key)
            node = node.right
            if node is start:
                break

    walk(heap._min, float("-inf"))
    assert len(seen) == len(heap)
    # The tracked minimum really is minimal.
    assert all(heap._nodes[item].key >= heap._min.key for item in heap._nodes)


def test_consolidation_after_pop_preserves_invariants():
    heap = FibonacciHeap()
    for i in range(64):
        heap.push(i, float(64 - i))
    check_heap_invariants(heap)
    for _ in range(10):
        heap.pop()
        check_heap_invariants(heap)


def test_cascading_cuts_preserve_invariants():
    rng = random.Random(5)
    heap = FibonacciHeap()
    for i in range(128):
        heap.push(i, float(i))
    heap.pop()  # trigger consolidation so trees have depth
    # Decrease many deep keys to force cascading cuts.
    for item in rng.sample(range(1, 128), 60):
        if item in heap:
            heap.decrease_key(item, heap.key_of(item) - 1000.0)
            check_heap_invariants(heap)


def test_degree_bound_logarithmic():
    # After consolidation every root degree is O(log n).
    import math

    heap = FibonacciHeap()
    n = 256
    for i in range(n):
        heap.push(i, float(i))
    heap.pop()
    max_degree = 0
    node = heap._min
    start = node
    while True:
        max_degree = max(max_degree, node.degree)
        node = node.right
        if node is start:
            break
    assert max_degree <= int(math.log(n, 1.618)) + 2


def test_interleaved_random_against_model():
    rng = random.Random(42)
    heap = FibonacciHeap()
    model: dict[int, float] = {}
    next_id = 0
    for step in range(2000):
        op = rng.random()
        if op < 0.45 or not model:
            heap.push(next_id, rng.uniform(0, 100))
            model[next_id] = heap.key_of(next_id)
            next_id += 1
        elif op < 0.75:
            item = rng.choice(list(model))
            new_key = model[item] - rng.uniform(0, 10)
            heap.decrease_key(item, new_key)
            model[item] = new_key
        else:
            item, key = heap.pop()
            assert key == min(model.values())
            del model[item]
        if step % 250 == 0:
            check_heap_invariants(heap)
    check_heap_invariants(heap)


def test_pop_all_from_single_tree():
    heap = FibonacciHeap()
    heap.push("only", 1.0)
    assert heap.pop() == ("only", 1.0)
    assert heap._min is None
    heap.push("again", 2.0)
    assert heap.pop() == ("again", 2.0)
