"""Unit tests for path reconstruction and ShortestPathTree."""

import math

import pytest

from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.paths import (
    ShortestPathTree,
    reconstruct_path,
    reconstruct_tags,
)
from repro.shortestpath.structures import GraphBuilder


class TestReconstructPath:
    def test_root_only(self):
        assert reconstruct_path([-1], 0) == [0]

    def test_chain(self):
        parent = [-1, 0, 1, 2]
        assert reconstruct_path(parent, 3) == [0, 1, 2, 3]

    def test_branching(self):
        #     0
        #    / \
        #   1   2
        parent = [-1, 0, 0]
        assert reconstruct_path(parent, 1) == [0, 1]
        assert reconstruct_path(parent, 2) == [0, 2]

    def test_cycle_detected(self):
        parent = [1, 0]
        with pytest.raises(ValueError, match="cycle"):
            reconstruct_path(parent, 0)

    def test_tags(self):
        parent = [-1, 0, 1]
        parent_tag = [-1, 10, 20]
        assert reconstruct_tags(parent, parent_tag, 2) == [10, 20]
        assert reconstruct_tags(parent, parent_tag, 0) == []


class TestShortestPathTree:
    @pytest.fixture
    def tree(self):
        b = GraphBuilder(4)
        b.add_edge(0, 1, 1.0, tag=100)
        b.add_edge(1, 2, 1.0, tag=101)
        b.add_edge(0, 3, 10.0, tag=102)
        run = dijkstra(b.build(), 0)
        return ShortestPathTree(
            root=0, dist=run.dist, parent=run.parent, parent_tag=run.parent_tag
        )

    def test_distance(self, tree):
        assert tree.distance(2) == 2.0
        assert tree.distance(3) == 10.0

    def test_path(self, tree):
        assert tree.path(2) == [0, 1, 2]

    def test_tags(self, tree):
        assert tree.tags(2) == [100, 101]

    def test_reachable(self, tree):
        assert tree.reachable(2)

    def test_unreachable_raises(self):
        tree = ShortestPathTree(
            root=0, dist=[0.0, math.inf], parent=[-1, -1], parent_tag=[-1, -1]
        )
        assert not tree.reachable(1)
        with pytest.raises(ValueError):
            tree.path(1)
        with pytest.raises(ValueError):
            tree.tags(1)
