"""Unit tests for DeltaOverlay: resource-indexed in-place CSR patching."""

import math

import pytest

from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.shortestpath import DeltaOverlay
from repro.topology.reference import paper_figure1_network

INF = math.inf


def two_path_network():
    """0 -> 2 via 1 (cheap, λ0) or via 3 (pricier, λ1); k=2.

    Node 1 sees both wavelengths in and out, so the overlay carries its
    cross-wavelength conversion edges (the pruned build emits them only
    where both endpoints exist).
    """
    net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.5))
    for v in range(4):
        net.add_node(v)
    net.add_link(0, 1, {0: 1.0, 1: 5.0})
    net.add_link(1, 2, {0: 1.0, 1: 1.0})
    net.add_link(0, 3, {1: 2.0})
    net.add_link(3, 2, {1: 2.0})
    return net


def overlay_for(net):
    router = LiangShenRouter(net, heap="flat")
    return router, DeltaOverlay(router.all_pairs_graph())


def route_hops(router, s, t):
    try:
        return router.route_via_all_pairs(s, t).path.hops
    except NoPathError:
        return None


class TestEvents:
    def test_fail_and_recover_channel_round_trips(self):
        router, delta = overlay_for(two_path_network())
        before = route_hops(router, 0, 2)
        slots = delta.fail_channel(0, 1, 0)
        assert len(slots) == 1
        assert delta.masked_edges == 1
        degraded = route_hops(router, 0, 2)
        assert degraded != before  # forced onto the λ1 branch
        assert delta.recover_channel(0, 1, 0) == slots
        assert delta.masked_edges == 0
        assert route_hops(router, 0, 2) == before

    def test_duplicate_fail_is_a_noop(self):
        _, delta = overlay_for(two_path_network())
        assert len(delta.fail_channel(0, 1, 0)) == 1
        assert delta.fail_channel(0, 1, 0) == []
        assert delta.masked_edges == 1

    def test_link_fail_masks_every_channel(self):
        net = paper_figure1_network()
        _, delta = overlay_for(net)
        num_channels = len(net.link(1, 2).costs)
        slots = delta.fail_link(1, 2)
        assert len(slots) == num_channels
        assert delta.recover_link(1, 2) == slots
        assert delta.masked_edges == 0

    def test_reason_sets_compose(self):
        # A channel dark for two reasons stays dark until both clear.
        _, delta = overlay_for(two_path_network())
        assert len(delta.fail_link(0, 1)) == 2  # λ0 and λ1
        assert delta.fail_channel(0, 1, 0) == []  # already masked
        # Link recovery frees λ1; λ0 keeps its own channel reason.
        assert len(delta.recover_link(0, 1)) == 1
        assert delta.masked_edges == 1
        assert len(delta.recover_channel(0, 1, 0)) == 1
        assert delta.masked_edges == 0

    def test_fail_converter_masks_only_cross_wavelength_edges(self):
        router, delta = overlay_for(two_path_network())
        slots = delta.fail_converter(1)
        assert slots  # node 1 could convert λ0 <-> λ1
        # λ0 continuity through node 1 must survive the converter outage.
        assert route_hops(router, 0, 2) is not None
        assert delta.recover_converter(1) == slots
        assert delta.masked_edges == 0

    def test_fail_of_unknown_resource_is_safe_noop(self):
        _, delta = overlay_for(two_path_network())
        assert delta.fail_channel(0, 3, 0) == []  # link carries only λ1
        assert delta.fail_link(2, 0) == []  # no such directed link
        assert delta.masked_edges == 0

    def test_recover_of_unknown_resource_demands_rebuild(self):
        _, delta = overlay_for(two_path_network())
        assert delta.recover_channel(0, 3, 0) is None
        assert delta.recover_link(2, 0) is None
        assert delta.recover_converter(1) is None  # never failed here

    def test_converter_without_cross_edges_is_never_recorded(self):
        # Regression: a node that cannot convert (or whose converter was
        # already down at build time) must not become "recoverable" —
        # the recovery would have to add edges the overlay never had.
        net = two_path_network()
        net.set_conversion(1, NoConversion())
        _, delta = overlay_for(net)
        assert delta.fail_converter(1) == []
        assert delta.recover_converter(1) is None

    def test_delta_epoch_counts_every_event(self):
        _, delta = overlay_for(two_path_network())
        assert delta.delta_epoch == 0
        delta.fail_channel(0, 1, 0)
        delta.fail_channel(9, 9, 9)  # unknown still bumps
        delta.recover_channel(0, 1, 0)
        assert delta.delta_epoch == 3


class TestRepairPlumbing:
    def test_slot_pairs_and_in_edges_agree_with_csr(self):
        _, delta = overlay_for(two_path_network())
        slots = delta.fail_channel(0, 1, 0)
        ((tail, head),) = delta.slot_pairs(slots)
        assert (tail, slots[0]) in delta.in_edges(head)

    def test_masked_weight_is_inf_and_restored_exactly(self):
        _, delta = overlay_for(two_path_network())
        graph = delta.layered.graph
        (slot,) = delta.fail_channel(0, 1, 0)
        assert graph.csr()[2][slot] == INF
        delta.recover_channel(0, 1, 0)
        assert graph.csr()[2][slot] == 1.0


class TestMaterialize:
    def degraded_view(self, net, failed_channels=(), failed_converters=()):
        view = WDMNetwork(net.num_wavelengths, net.default_conversion)
        for node in net.nodes():
            if node in failed_converters:
                view.add_node(node, NoConversion())
            else:
                view.add_node(node, net.explicit_conversion(node))
        for link in net.links():
            costs = {
                w: c
                for w, c in link.costs.items()
                if (link.tail, link.head, w) not in failed_channels
            }
            view.add_link(link.tail, link.head, costs)
        return view

    def assert_byte_identical(self, delta, view):
        fresh = LiangShenRouter(view, heap="flat").all_pairs_graph()
        patched = delta.materialize()
        assert patched.graph.num_nodes == fresh.graph.num_nodes
        assert patched.graph.csr() == fresh.graph.csr()
        assert list(patched.decode) == list(fresh.decode)
        assert patched.x_ids == fresh.x_ids
        assert patched.y_ids == fresh.y_ids
        assert patched.source_ids == fresh.source_ids
        assert patched.sink_ids == fresh.sink_ids

    def test_pristine_materialization_is_identity(self):
        net = paper_figure1_network()
        _, delta = overlay_for(net)
        self.assert_byte_identical(delta, net)

    def test_channel_fail_materializes_like_degraded_build(self):
        net = paper_figure1_network()
        _, delta = overlay_for(net)
        wavelength = min(net.link(1, 2).costs)
        delta.fail_channel(1, 2, wavelength)
        self.assert_byte_identical(
            delta, self.degraded_view(net, failed_channels={(1, 2, wavelength)})
        )

    def test_converter_fail_materializes_like_degraded_build(self):
        net = two_path_network()
        _, delta = overlay_for(net)
        delta.fail_converter(1)
        self.assert_byte_identical(
            delta, self.degraded_view(net, failed_converters={1})
        )

    def test_net_zero_churn_materializes_pristine(self):
        net = two_path_network()
        _, delta = overlay_for(net)
        delta.fail_link(0, 1)
        delta.fail_channel(0, 3, 1)
        delta.fail_converter(1)
        delta.recover_converter(1)
        delta.recover_channel(0, 3, 1)
        delta.recover_link(0, 1)
        assert delta.masked_edges == 0
        self.assert_byte_identical(delta, net)
