"""Integration: the full provisioning pipeline under sustained load.

Drives the dynamic simulation end-to-end on reference WANs and checks the
global invariants that only show up under churn: conservation of channels,
no phantom reservations, deterministic replay, and the policy ordering
(optimal semilightpath routing never blocks more than first-fit on the
same trace).
"""

import pytest

from repro.topology.reference import arpanet_network, nsfnet_network
from repro.wdm.first_fit import FirstFitProvisioner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator


@pytest.mark.parametrize("make_net", [nsfnet_network, arpanet_network], ids=["nsfnet", "arpanet"])
class TestPipeline:
    def test_channel_conservation_under_churn(self, make_net):
        net = make_net(num_wavelengths=3)
        prov = SemilightpathProvisioner(net)
        trace = TrafficGenerator(net.nodes(), 40.0, 0.5, seed=21).generate(500)
        stats = DynamicSimulation(prov).run(trace)
        assert prov.state.num_occupied == 0
        assert stats.admitted + stats.blocked == 500

    def test_replay_deterministic(self, make_net):
        net = make_net(num_wavelengths=2)
        trace = TrafficGenerator(net.nodes(), 25.0, 1.0, seed=9).generate(300)
        a = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        b = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        assert a.blocked == b.blocked
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_policy_ordering(self, make_net):
        net = make_net(num_wavelengths=3)
        trace = TrafficGenerator(net.nodes(), 30.0, 1.0, seed=17).generate(400)
        optimal = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        baseline = DynamicSimulation(FirstFitProvisioner(net)).run(trace)
        assert optimal.blocked <= baseline.blocked

    def test_admitted_paths_used_valid_channels(self, make_net):
        """Spot-check mid-simulation: every active path's channels are
        genuinely reserved (no double-allocation)."""
        net = make_net(num_wavelengths=2)
        prov = SemilightpathProvisioner(net)
        gen = TrafficGenerator(net.nodes(), 20.0, 2.0, seed=5)
        for request in gen.generate(100):
            prov.try_establish(request.source, request.target)
        seen = set()
        for conn in prov.active_connections():
            for hop in conn.path.hops:
                channel = (hop.tail, hop.head, hop.wavelength)
                assert channel not in seen, "channel double-booked"
                seen.add(channel)
        assert len(seen) == prov.state.num_occupied
