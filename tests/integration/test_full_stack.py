"""Full-stack integration: every subsystem in one scenario.

Generate → serialize → reload → plan → provision → analyze → cut →
restore → audit.  This is the workflow DESIGN.md promises a downstream
user; the test asserts cross-subsystem invariants that no unit test can
see.
"""

import math

from repro.analysis.criticality import fiber_criticality
from repro.analysis.fairness import blocking_concentration
from repro.core.batch import BatchRouter
from repro.core.routing import LiangShenRouter
from repro.io.serialization import network_from_json, network_to_json
from repro.topology.reference import cost239_network
from repro.topology.traffic_matrices import gravity_demands
from repro.wdm.events import EventLog
from repro.wdm.planner import StaticPlanner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.restoration import restore
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator


def test_generate_serialize_plan_provision_cut_restore():
    # 1. Topology + serialization round trip.
    original = cost239_network(num_wavelengths=4)
    network = network_from_json(network_to_json(original))
    assert network.num_links == original.num_links

    # 2. Static planning over a gravity demand matrix.
    demands = gravity_demands(network.nodes(), total_circuits=25, seed=11)
    plan = StaticPlanner(network, ordering="random", restarts=4, seed=11).plan(demands)
    assert plan.circuits_carried > 0

    # 3. Load the plan into a live provisioner.
    provisioner = SemilightpathProvisioner(network)
    for paths in plan.routed.values():
        for path in paths:
            provisioner.admit_path(path)
    planned_active = provisioner.num_active
    assert planned_active == plan.circuits_carried

    # 4. Criticality: the most dangerous fiber for a key pair.
    ranking = fiber_criticality(network, "London", "Vienna")
    assert ranking and all(c.regret >= -1e-9 for c in ranking)

    # 5. Cut that fiber and restore.
    worst = ranking[0].resource
    report = restore(provisioner, *worst)
    assert provisioner.num_active == planned_active - len(report.lost)
    for connection in report.restored:
        # Restored paths avoid the cut fiber and are correctly priced.
        assert all(
            frozenset((h.tail, h.head)) != frozenset(worst)
            for h in connection.path.hops
        )
        connection.path.validate(network)

    # 6. Dynamic traffic on top of the surviving state, with event log.
    log = EventLog()
    trace = TrafficGenerator(network.nodes(), 20.0, 1.0, seed=13).generate(150)
    stats = DynamicSimulation(provisioner, observer=log).run(trace)
    assert stats.offered == 150
    assert log.summary().get("admit", 0) == stats.admitted
    assert 0.0 <= blocking_concentration(stats) <= 1.0

    # 7. After the dynamic run every dynamic connection is released and
    #    exactly the planned survivors remain.
    assert provisioner.num_active == planned_active - len(report.lost)

    # 8. Audit every surviving path against the network (Eq. 1) and the
    #    occupancy ledger.
    reserved = set()
    for connection in provisioner.active_connections():
        connection.path.validate(network)
        for hop in connection.path.hops:
            channel = (hop.tail, hop.head, hop.wavelength)
            assert channel not in reserved
            reserved.add(channel)
    assert len(reserved) == provisioner.state.num_occupied


def test_batch_router_consistent_with_provisioning_view():
    """BatchRouter answers on the full network must lower-bound what any
    provisioner can achieve on a residual network."""
    network = cost239_network(num_wavelengths=3)
    batch = BatchRouter(network)
    provisioner = SemilightpathProvisioner(network)
    trace = TrafficGenerator(network.nodes(), 15.0, 2.0, seed=17).generate(60)
    for request in trace:
        connection = provisioner.try_establish(request.source, request.target)
        if connection is None:
            continue
        floor = batch.cost(request.source, request.target)
        assert connection.path.total_cost >= floor - 1e-9
    # Sanity: the batch answers equal a fresh per-query router's.
    single = LiangShenRouter(network)
    for s, t in [("London", "Vienna"), ("Madrid", "Berlin") if network.has_node("Madrid") else ("Paris", "Berlin")]:
        assert batch.cost(s, t) == single.route(s, t).cost


def test_every_public_router_agrees_on_reference_network():
    """One table: all seven optimum-producing code paths, one network."""
    import networkx as nx

    from repro.baseline.brute_force import brute_force_route
    from repro.baseline.cfz import CFZRouter
    from repro.core.bounded import BoundedConversionRouter
    from repro.distributed.all_pairs_dist import DistributedAllPairs
    from repro.distributed.semilightpath_async import AsyncSemilightpathRouter
    from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
    from repro.io.nx import routing_graph_to_networkx
    from repro.topology.reference import nsfnet_network

    network = nsfnet_network(num_wavelengths=3)
    s, t = "WA", "NY"
    generous = network.num_nodes * network.num_wavelengths
    g, src, dst = routing_graph_to_networkx(network, s, t)
    all_pairs = DistributedAllPairs(network).run()
    answers = {
        "liang_shen": LiangShenRouter(network).route(s, t).cost,
        "batch": BatchRouter(network).cost(s, t),
        "cfz_dense": CFZRouter(network, engine="dense").route(s, t).cost,
        "cfz_heap": CFZRouter(network, engine="heap").route(s, t).cost,
        "brute_force": brute_force_route(network, s, t).total_cost,
        "bounded_generous": BoundedConversionRouter(network).route(s, t, generous).cost,
        "distributed_sync": DistributedSemilightpathRouter(network).route(s, t).cost,
        "distributed_async": AsyncSemilightpathRouter(network, seed=3).route(s, t).cost,
        "distributed_all_pairs": all_pairs.cost(s, t),
        "networkx": nx.dijkstra_path_length(g, src, dst),
    }
    reference = answers["brute_force"]
    for name, value in answers.items():
        assert math.isclose(value, reference, rel_tol=1e-9), (name, value, reference)
