"""Integration: four independent implementations must agree everywhere.

The Liang–Shen router, the CFZ wavelength-graph router (both engines),
the brute-force state-relaxation oracle, and the distributed protocol are
four genuinely independent code paths to the same optimum.  Any divergence
is a bug in at least one of them.
"""

import math

import pytest

from repro.baseline.brute_force import brute_force_route
from repro.baseline.cfz import CFZRouter
from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError
from tests.conftest import make_random_net


def optimal_cost(fn, *args):
    try:
        return fn(*args)
    except NoPathError:
        return None


@pytest.mark.parametrize("trial", range(40))
def test_four_way_agreement_random_networks(trial):
    net = make_random_net(31337 + trial, max_nodes=9, max_k=4)
    nodes = net.nodes()
    pairs = [(nodes[0], nodes[-1]), (nodes[-1], nodes[0]), (nodes[1], nodes[0])]
    ls = LiangShenRouter(net)
    cfz_dense = CFZRouter(net, engine="dense")
    cfz_heap = CFZRouter(net, engine="heap")
    dist = DistributedSemilightpathRouter(net)
    for s, t in pairs:
        if s == t:
            continue
        costs = {
            "liang_shen": optimal_cost(lambda a, b: ls.route(a, b).cost, s, t),
            "cfz_dense": optimal_cost(lambda a, b: cfz_dense.route(a, b).cost, s, t),
            "cfz_heap": optimal_cost(lambda a, b: cfz_heap.route(a, b).cost, s, t),
            "brute": optimal_cost(
                lambda a, b: brute_force_route(net, a, b).total_cost, s, t
            ),
            "distributed": optimal_cost(lambda a, b: dist.route(a, b).cost, s, t),
        }
        reference = costs["brute"]
        for name, value in costs.items():
            if reference is None:
                assert value is None, f"{name} found a path the oracle missed"
            else:
                assert value == pytest.approx(reference), (
                    f"{name}: {value} != oracle {reference} on pair ({s}, {t})"
                )


@pytest.mark.parametrize("trial", range(10))
def test_all_pairs_vs_brute_force(trial):
    net = make_random_net(777 + trial, max_nodes=6, max_k=3)
    result = LiangShenRouter(net).route_all_pairs()
    for s in net.nodes():
        for t in net.nodes():
            if s == t:
                continue
            expected = optimal_cost(
                lambda a, b: brute_force_route(net, a, b).total_cost, s, t
            )
            actual = result.cost(s, t)
            if expected is None:
                assert actual == math.inf
            else:
                assert actual == pytest.approx(expected)


@pytest.mark.parametrize("trial", range(10))
def test_returned_paths_are_realizable_and_priced_right(trial):
    """Every router's returned path must re-evaluate to its claimed cost."""
    net = make_random_net(4242 + trial)
    nodes = net.nodes()
    for router in (LiangShenRouter(net), CFZRouter(net)):
        try:
            result = router.route(nodes[0], nodes[-1])
        except NoPathError:
            continue
        assert result.path.evaluate_cost(net) == pytest.approx(result.cost)
        result.path.validate(net)


def test_heaps_identical_results_on_large_instance():
    net = make_random_net(99, max_nodes=30, max_k=6)
    nodes = net.nodes()
    costs = set()
    for heap in ("binary", "pairing", "fibonacci"):
        try:
            costs.add(round(LiangShenRouter(net, heap=heap).route(nodes[0], nodes[-1]).cost, 9))
        except NoPathError:
            costs.add(None)
    assert len(costs) == 1
