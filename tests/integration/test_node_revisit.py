"""The Figures 5-6 scenario: an optimal semilightpath that revisits a node.

The paper (end of Section II and Figs. 5-6) stresses that the model allows
a semilightpath to pass through a node more than once on different
wavelengths, and that the auxiliary-graph reduction handles this — while
Restrictions 1-2 (Theorem 2) rule it out.  This test constructs a concrete
network where the unique optimum *does* revisit a node, verifies every
router finds it, and then confirms the restricted variant is node-simple.
"""

import pytest

from repro.baseline.brute_force import brute_force_route
from repro.core.conversion import FixedCostConversion, MatrixConversion
from repro.core.network import WDMNetwork
from repro.core.restrictions import check_restriction1, check_restriction2
from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter


def revisit_network() -> WDMNetwork:
    """A network whose s -> t optimum passes through w twice.

    Topology (wavelength / cost on each arc):

        s --λ1/1--> w --λ1/1--> a --λ2/1--> w --λ2/1--> t

    plus an expensive escape hatch s -> t on λ1 costing 100.  Node w can
    only convert nothing (no conversion at w): arriving on λ1 it must leave
    on λ1 (to a), arriving on λ2 it must leave on λ2 (to t).  Node a
    converts λ1 -> λ2 for 0.1.  The only cheap s -> t walk is
    s, w, a, w, t — visiting w twice on different wavelengths.
    """
    no_conv = MatrixConversion({})  # only pass-through
    net = WDMNetwork(num_wavelengths=2, default_conversion=no_conv)
    for node in ("s", "w", "a", "t"):
        net.add_node(node)
    net.set_conversion("a", MatrixConversion({(0, 1): 0.1}))
    net.add_link("s", "w", {0: 1.0})
    net.add_link("w", "a", {0: 1.0})
    net.add_link("a", "w", {1: 1.0})
    net.add_link("w", "t", {1: 1.0})
    net.add_link("s", "t", {0: 100.0})
    return net


class TestRevisitIsOptimal:
    def test_brute_force_finds_revisiting_walk(self):
        net = revisit_network()
        path = brute_force_route(net, "s", "t")
        assert path.total_cost == pytest.approx(4.1)
        assert path.nodes() == ["s", "w", "a", "w", "t"]
        assert not path.is_node_simple

    def test_liang_shen_finds_the_same_walk(self):
        net = revisit_network()
        result = LiangShenRouter(net).route("s", "t")
        assert result.cost == pytest.approx(4.1)
        assert result.path.nodes() == ["s", "w", "a", "w", "t"]
        assert result.path.wavelengths() == [0, 0, 1, 1]
        result.path.validate(net)

    def test_distributed_finds_the_same_walk(self):
        net = revisit_network()
        result = DistributedSemilightpathRouter(net).route("s", "t")
        assert result.cost == pytest.approx(4.1)
        assert not result.path.is_node_simple

    def test_the_walk_beats_every_simple_path(self):
        net = revisit_network()
        # The only node-simple s->t route is the direct link at cost 100.
        result = LiangShenRouter(net).route("s", "t")
        assert result.cost < 100.0

    def test_network_violates_the_restrictions(self):
        """Figs. 5-6 can only arise when Restriction 1 or 2 fails."""
        net = revisit_network()
        r1 = check_restriction1(net)
        holds_r2, _, _ = check_restriction2(net)
        assert r1 or not holds_r2
        # Specifically: w hears λ2 (from a) and can transmit λ1 (to a) but
        # cannot convert — a Restriction 1 violation.
        assert ("w", 1, 0) in r1


class TestRestrictionsForbidRevisit:
    def test_compliant_variant_routes_simple(self):
        """Give every node full cheap conversion: Theorem 2 applies and the
        optimum becomes node-simple (s, w, t is now possible via switch at w)."""
        net = revisit_network()
        for node in net.nodes():
            net.set_conversion(node, FixedCostConversion(0.1))
        assert check_restriction1(net) == []
        holds, _, _ = check_restriction2(net)
        assert holds
        result = LiangShenRouter(net).route("s", "t")
        assert result.path.is_node_simple
        # s -[λ1]-> w -(convert 0.1)-[λ2]-> t = 1 + 0.1 + 1.
        assert result.cost == pytest.approx(2.1)
