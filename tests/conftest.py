"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.topology.cost_models import random_costs
from repro.topology.generators import random_sparse_network
from repro.topology.reference import paper_figure1_network
from repro.topology.wavelength_assign import random_wavelengths


@pytest.fixture
def paper_net() -> WDMNetwork:
    """The paper's Figure 1 example (default costs)."""
    return paper_figure1_network()


@pytest.fixture
def tiny_net() -> WDMNetwork:
    """A 3-node hand-checkable network.

    Topology: a -> b -> c plus a -> c direct.
      a->b: λ1 cost 1
      b->c: λ2 cost 1        (forces a conversion at b, cost 0.5)
      a->c: λ1 cost 4        (direct but expensive)
    Optimal a->c: a-b-c with one conversion, cost 2.5.
    """
    net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.5))
    for node in "abc":
        net.add_node(node)
    net.add_link("a", "b", {0: 1.0})
    net.add_link("b", "c", {1: 1.0})
    net.add_link("a", "c", {0: 4.0})
    return net


def make_random_net(trial: int, max_nodes: int = 10, max_k: int = 5) -> WDMNetwork:
    """Deterministic random network for cross-validation tests.

    Uses a flat-cost conversion model (chain-free), so the CFZ wavelength
    graph and Eq. (1) agree — required by the tests that compare router
    implementations against each other.
    """
    rng = random.Random(trial)
    n = rng.randint(3, max_nodes)
    k = rng.randint(1, max_k)
    return random_sparse_network(
        n,
        k,
        average_degree=2.5,
        seed=trial,
        wavelength_policy=random_wavelengths(k, availability=0.6),
        cost_policy=random_costs(1.0, 5.0),
        conversion=FixedCostConversion(rng.uniform(0.0, 2.0)),
    )
