"""Unit tests for the Chandy–Misra asynchronous SSSP."""

import math
import random

import pytest

from repro.distributed.bellman_ford_dist import DistributedBellmanFord
from repro.distributed.chandy_misra import ChandyMisraSSSP


class TestBasics:
    def test_triangle(self):
        cm = ChandyMisraSSSP([0, 1, 2], [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        dist, stats = cm.run(0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0}
        assert stats.total_messages > 0

    def test_termination_flag_with_unreachable_nodes(self):
        cm = ChandyMisraSSSP([0, 1, 2], [(0, 1, 1.0)])
        dist, _ = cm.run(0)  # must not raise (node 2 simply never engages)
        assert dist[2] == math.inf

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ChandyMisraSSSP([0, 1], [(0, 1, -2.0)])

    def test_isolated_source(self):
        cm = ChandyMisraSSSP([0, 1], [(1, 0, 1.0)])  # nothing leaves 0
        dist, stats = cm.run(0)
        assert dist == {0: 0.0, 1: math.inf}
        assert stats.total_messages == 0

    def test_parents_consistent_with_distances(self):
        links = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0), (2, 3, 2.0)]
        cm = ChandyMisraSSSP([0, 1, 2, 3], links)
        dist, _ = cm.run(0)
        weight = {(t, h): w for t, h, w in links}
        for v, parent in cm.parents.items():
            if parent is not None:
                assert dist[v] == pytest.approx(dist[parent] + weight[(parent, v)])


class TestSchedulesAndAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_many_schedules_same_distances(self, seed):
        links = [
            (0, 1, 2.0), (0, 2, 7.0), (1, 2, 3.0), (2, 3, 1.0),
            (1, 3, 8.0), (3, 4, 2.0), (2, 4, 9.0),
        ]
        cm = ChandyMisraSSSP(list(range(5)), links, seed=seed)
        dist, _ = cm.run(0)
        assert dist == {0: 0.0, 1: 2.0, 2: 5.0, 3: 6.0, 4: 8.0}

    @pytest.mark.parametrize("trial", range(12))
    def test_random_graphs_match_bellman_ford(self, trial):
        rng = random.Random(7000 + trial)
        n = rng.randint(2, 15)
        triples = []
        for _ in range(rng.randint(1, 3 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                triples.append((u, v, rng.uniform(0.1, 5.0)))
        if not triples:
            pytest.skip("no links drawn")
        expected, _ = DistributedBellmanFord(list(range(n)), triples).run(0)
        actual, _ = ChandyMisraSSSP(list(range(n)), triples, seed=trial).run(0)
        for v in range(n):
            assert actual[v] == pytest.approx(expected[v])

    def test_no_engagement_cycle_deadlock(self):
        """Regression: on cyclic topologies with skewed delays, a naive
        'shift engagement to the latest proposer' scheme builds an
        engagement cycle and the source never observes termination.  The
        classic first-engager rule must terminate."""
        # Directed 3-cycle with a shortcut, adversarial constant delays.
        links = [
            (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
            (0, 2, 5.0), (2, 1, 0.4),
        ]
        cm = ChandyMisraSSSP(
            [0, 1, 2],
            links,
            delay=lambda t, h: 1.0 if repr(t) < repr(h) else 7.0,
        )
        dist, _ = cm.run(0)  # must not raise the detection-bug error
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0}

    def test_message_count_includes_acks(self):
        # Every dist message is acked exactly once: messages come in pairs
        # plus re-proposals; total must be even when every proposal is
        # matched by an ack and no proposals are outstanding.
        links = [(0, 1, 1.0), (1, 2, 1.0)]
        cm = ChandyMisraSSSP([0, 1, 2], links, seed=1)
        _, stats = cm.run(0)
        assert stats.total_messages % 2 == 0
