"""Unit tests for distributed Bellman–Ford."""

import math
import random

import pytest

from repro.distributed.bellman_ford_dist import DistributedBellmanFord
from repro.shortestpath.bellman_ford import bellman_ford
from repro.shortestpath.structures import GraphBuilder


class TestBasics:
    def test_chain(self):
        bf = DistributedBellmanFord([0, 1, 2], [(0, 1, 2.0), (1, 2, 3.0)])
        dist, stats = bf.run(0)
        assert dist == {0: 0.0, 1: 2.0, 2: 5.0}
        assert stats.total_messages > 0
        assert stats.rounds >= 2

    def test_unreachable(self):
        bf = DistributedBellmanFord([0, 1, 2], [(0, 1, 1.0)])
        dist, _ = bf.run(0)
        assert dist[2] == math.inf

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DistributedBellmanFord([0, 1], [(0, 1, -1.0)])

    def test_parents_form_tree(self):
        bf = DistributedBellmanFord(
            [0, 1, 2, 3], [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0)]
        )
        dist, _ = bf.run(0)
        assert bf.parents[2] == 1
        assert bf.parents[3] == 2
        assert bf.parents[0] is None

    def test_parallel_links_cheapest_wins(self):
        bf = DistributedBellmanFord([0, 1], [(0, 1, 5.0), (0, 1, 2.0)])
        dist, _ = bf.run(0)
        assert dist[1] == 2.0

    def test_rounds_bounded_by_hop_count(self):
        # A path graph: distances propagate one hop per round (+1 quiet).
        n = 12
        links = [(i, i + 1, 1.0) for i in range(n - 1)]
        bf = DistributedBellmanFord(list(range(n)), links)
        _, stats = bf.run(0)
        assert stats.rounds <= n + 1


class TestAgainstCentralized:
    @pytest.mark.parametrize("trial", range(15))
    def test_random_agreement(self, trial):
        rng = random.Random(trial)
        n = rng.randint(2, 20)
        triples = []
        for _ in range(rng.randint(1, 4 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                triples.append((u, v, rng.uniform(0.0, 5.0)))
        if not triples:
            pytest.skip("no links drawn")
        builder = GraphBuilder(n)
        for u, v, w in triples:
            builder.add_edge(u, v, w)
        expected = bellman_ford(builder.build(), 0).dist
        dist, _ = DistributedBellmanFord(list(range(n)), triples).run(0)
        for v in range(n):
            assert dist[v] == pytest.approx(expected[v])
