"""Unit tests for the asynchronous semilightpath router."""

import pytest

from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_async import AsyncSemilightpathRouter
from repro.exceptions import NoPathError


class TestCorrectness:
    def test_paper_example(self, paper_net):
        result = AsyncSemilightpathRouter(paper_net, seed=1).route(1, 7)
        assert result.cost == pytest.approx(2.0)
        result.path.validate(paper_net)

    @pytest.mark.parametrize("seed", range(8))
    def test_every_schedule_same_answer(self, paper_net, seed):
        expected = LiangShenRouter(paper_net).route(1, 6).cost
        result = AsyncSemilightpathRouter(paper_net, seed=seed).route(1, 6)
        assert result.cost == pytest.approx(expected)

    def test_no_path_raises(self, paper_net):
        with pytest.raises(NoPathError):
            AsyncSemilightpathRouter(paper_net).route(7, 1)

    def test_same_endpoints_rejected(self, paper_net):
        with pytest.raises(ValueError):
            AsyncSemilightpathRouter(paper_net).route(1, 1)

    @pytest.mark.parametrize("trial", range(12))
    def test_random_networks_match_centralized(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(6400 + trial)
        nodes = net.nodes()
        try:
            expected = LiangShenRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            expected = None
        try:
            actual = AsyncSemilightpathRouter(net, seed=trial).route(
                nodes[0], nodes[-1]
            ).cost
        except NoPathError:
            actual = None
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)

    def test_deterministic_per_seed(self, paper_net):
        a = AsyncSemilightpathRouter(paper_net, seed=5).route(1, 7)
        b = AsyncSemilightpathRouter(paper_net, seed=5).route(1, 7)
        assert a.stats.total_messages == b.stats.total_messages


class TestTerminationAccounting:
    def test_acks_roughly_double_traffic(self, paper_net):
        """Every proposal is acked once: async messages ≈ 2x proposals."""
        from repro.distributed.semilightpath_dist import (
            DistributedSemilightpathRouter,
        )

        sync_result = DistributedSemilightpathRouter(paper_net).route(1, 7)
        async_result = AsyncSemilightpathRouter(paper_net, seed=2).route(1, 7)
        # Async proposal counts differ from sync (different improvement
        # interleavings) but total traffic stays within a small factor.
        assert async_result.stats.total_messages <= 6 * sync_result.stats.total_messages
        assert async_result.stats.total_messages % 2 == 0  # dist/ack pairs

    def test_adversarial_constant_delays(self, paper_net):
        """A pathological schedule (reverse-ordered constant delays) still
        terminates with the right answer."""
        result = AsyncSemilightpathRouter(
            paper_net, delay=lambda t, h: 1.0 if repr(t) < repr(h) else 5.0
        ).route(1, 6)
        expected = LiangShenRouter(paper_net).route(1, 6).cost
        assert result.cost == pytest.approx(expected)
