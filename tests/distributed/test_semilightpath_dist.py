"""Unit tests for the distributed semilightpath router (Theorem 3/5)."""

import pytest

from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError


class TestCorrectness:
    def test_tiny_optimum(self, tiny_net):
        result = DistributedSemilightpathRouter(tiny_net).route("a", "c")
        assert result.cost == pytest.approx(2.5)
        assert result.path.nodes() == ["a", "b", "c"]
        result.path.validate(tiny_net)

    def test_paper_example_all_pairs(self, paper_net):
        central = LiangShenRouter(paper_net)
        distributed = DistributedSemilightpathRouter(paper_net)
        for s in range(1, 8):
            for t in range(1, 8):
                if s == t:
                    continue
                try:
                    expected = central.route(s, t).cost
                except NoPathError:
                    expected = None
                try:
                    result = distributed.route(s, t)
                    result.path.validate(paper_net)
                    actual = result.cost
                except NoPathError:
                    actual = None
                if expected is None:
                    assert actual is None
                else:
                    assert actual == pytest.approx(expected)

    def test_no_path_raises(self, paper_net):
        with pytest.raises(NoPathError):
            DistributedSemilightpathRouter(paper_net).route(7, 1)

    def test_same_endpoints_rejected(self, paper_net):
        with pytest.raises(ValueError):
            DistributedSemilightpathRouter(paper_net).route(1, 1)

    @pytest.mark.parametrize("trial", range(15))
    def test_random_networks(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(9000 + trial)
        nodes = net.nodes()
        try:
            expected = LiangShenRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            expected = None
        try:
            actual = DistributedSemilightpathRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            actual = None
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)


class TestTheorem3Accounting:
    def test_messages_bounded_in_practice(self, paper_net):
        """Theorem 3: O(km) messages.  On the uniform-cost example the
        constant is small; assert a concrete multiple to catch regressions."""
        result = DistributedSemilightpathRouter(paper_net).route(1, 7)
        k, m = 4, 11
        assert result.stats.total_messages <= 3 * k * m

    def test_rounds_bounded_in_practice(self, paper_net):
        result = DistributedSemilightpathRouter(paper_net).route(1, 7)
        k, n = 4, 7
        assert result.stats.rounds <= k * n

    def test_messages_counted_on_physical_links_only(self, paper_net):
        result = DistributedSemilightpathRouter(paper_net).route(1, 7)
        physical = {(l.tail, l.head) for l in paper_net.links()}
        assert set(result.stats.per_link) <= physical

    def test_restricted_regime_message_bound(self):
        """Theorem 5: with |Λ(e)| <= k0, messages are O(m k0) even when
        the universe k is much larger."""
        from repro.core.conversion import FixedCostConversion
        from repro.topology.generators import ring_network
        from repro.topology.wavelength_assign import bounded_random_wavelengths

        k, k0, n = 64, 2, 12
        net = ring_network(
            n,
            k,
            wavelength_policy=bounded_random_wavelengths(k, k0),
            conversion=FixedCostConversion(0.5),
            seed=5,
        )
        router = DistributedSemilightpathRouter(net)
        try:
            result = router.route(0, n // 2)
        except NoPathError:
            pytest.skip("random availability left the pair disconnected")
        m = net.num_links
        assert result.stats.total_messages <= 4 * m * k0
