"""Failure-mode tests: which protocols survive which network faults.

The synchronous simulator exposes a per-round fault hook that can drop,
duplicate, or reorder in-flight messages.  These tests pin the protocols'
fault envelopes:

* **Duplication** — distributed Bellman–Ford (and the semilightpath
  router built on it) is *idempotent*: re-delivering a distance proposal
  can never change the fixpoint.  Verified under heavy duplication.
* **Reordering** — delivery order within a round is irrelevant for the
  same reason.  Verified by shuffling.
* **Loss** — a dropped improvement can silently leave wrong (too large)
  distances; BF over an unreliable channel is *not* correct, and the test
  documents a concrete execution where loss corrupts the result.  (The
  paper's model — and ours — assumes reliable channels.)
"""

import random

import pytest

from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.distributed.simulator import SyncSimulator
from repro.exceptions import NoPathError
from repro.topology.reference import paper_figure1_network


def run_with_fault(network, source, target, fault):
    """Route distributedly with a fault hook patched into the simulator."""
    router = DistributedSemilightpathRouter(network)
    original_init = SyncSimulator.__init__

    def patched_init(self, nodes, links, processes, max_rounds=1_000_000, **kw):
        original_init(self, nodes, links, processes, max_rounds=max_rounds)
        self.fault = fault

    SyncSimulator.__init__ = patched_init  # type: ignore[method-assign]
    try:
        return router.route(source, target)
    finally:
        SyncSimulator.__init__ = original_init  # type: ignore[method-assign]


class TestDuplication:
    @pytest.mark.parametrize("seed", range(5))
    def test_bf_semilightpath_tolerates_duplication(self, seed):
        rng = random.Random(seed)

        def duplicate(round_index, in_flight):
            doubled = list(in_flight)
            for message in in_flight:
                if rng.random() < 0.5:
                    doubled.append(message)
            return doubled

        net = paper_figure1_network()
        expected = LiangShenRouter(net).route(1, 7).cost
        result = run_with_fault(net, 1, 7, duplicate)
        assert result.cost == pytest.approx(expected)

    def test_full_duplication_every_round(self):
        def double_everything(round_index, in_flight):
            return list(in_flight) * 2

        net = paper_figure1_network()
        expected = LiangShenRouter(net).route(1, 6).cost
        result = run_with_fault(net, 1, 6, double_everything)
        assert result.cost == pytest.approx(expected)


class TestReordering:
    @pytest.mark.parametrize("seed", range(5))
    def test_shuffled_delivery_order(self, seed):
        rng = random.Random(100 + seed)

        def shuffle(round_index, in_flight):
            shuffled = list(in_flight)
            rng.shuffle(shuffled)
            return shuffled

        net = paper_figure1_network()
        expected = LiangShenRouter(net).route(1, 7).cost
        result = run_with_fault(net, 1, 7, shuffle)
        assert result.cost == pytest.approx(expected)


class TestLoss:
    def test_total_loss_means_no_route(self):
        """Dropping every message leaves the target unreached: the router
        reports no path — wrong, but *detectably* wrong, never silently
        cheaper."""

        def black_hole(round_index, in_flight):
            return []

        net = paper_figure1_network()
        with pytest.raises(NoPathError):
            run_with_fault(net, 1, 7, black_hole)

    @pytest.mark.parametrize("seed", range(5))
    def test_loss_never_underestimates(self, seed):
        """Random loss can inflate distances or disconnect, but the
        protocol can never return a cost below the true optimum (messages
        only carry achievable walk costs)."""
        rng = random.Random(200 + seed)

        def lossy(round_index, in_flight):
            return [m for m in in_flight if rng.random() > 0.3]

        net = paper_figure1_network()
        expected = LiangShenRouter(net).route(1, 7).cost
        try:
            result = run_with_fault(net, 1, 7, lossy)
        except NoPathError:
            return  # disconnection is an acceptable (visible) failure
        assert result.cost >= expected - 1e-9
        # Whatever it returns must still be a realizable path.
        result.path.validate(net)
