"""Unit tests for the concurrent distributed all-pairs protocol."""

import math

import pytest

from repro.core.routing import LiangShenRouter
from repro.distributed.all_pairs_dist import DistributedAllPairs
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError


class TestCorrectness:
    def test_paper_example_matches_centralized(self, paper_net):
        result = DistributedAllPairs(paper_net).run()
        central = LiangShenRouter(paper_net).route_all_pairs()
        for s in paper_net.nodes():
            for t in paper_net.nodes():
                if s == t:
                    continue
                assert result.cost(s, t) == pytest.approx(central.cost(s, t))

    def test_paths_validate(self, paper_net):
        result = DistributedAllPairs(paper_net).run()
        for path in result.paths.values():
            path.validate(paper_net)

    def test_unreachable_absent(self, paper_net):
        result = DistributedAllPairs(paper_net).run()
        assert result.cost(7, 1) == math.inf
        assert (7, 1) not in result.paths

    @pytest.mark.parametrize("trial", range(10))
    def test_random_networks(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(5500 + trial, max_nodes=8, max_k=4)
        result = DistributedAllPairs(net).run()
        central = LiangShenRouter(net).route_all_pairs()
        for s in net.nodes():
            for t in net.nodes():
                if s == t:
                    continue
                assert result.cost(s, t) == pytest.approx(central.cost(s, t))


class TestConcurrencyPayoff:
    def test_rounds_far_below_sequential_sum(self, paper_net):
        """One concurrent run should take ~max (not sum) of per-source rounds."""
        concurrent = DistributedAllPairs(paper_net).run()
        single = DistributedSemilightpathRouter(paper_net)
        sequential_rounds = 0
        sequential_messages = 0
        for s in paper_net.nodes():
            for t in paper_net.nodes():
                if s == t:
                    continue
                try:
                    r = single.route(s, t)
                except NoPathError:
                    continue
                sequential_rounds += r.stats.rounds
                sequential_messages += r.stats.total_messages
        assert concurrent.stats.rounds < sequential_rounds / 4
        # Messages: one concurrent run resolves each source ONCE (the
        # sequential loop re-solves per target), so it must send fewer.
        assert concurrent.stats.total_messages < sequential_messages

    def test_message_budget_corollary2(self, paper_net):
        """Messages within the Corollary 2 O(k^2 n^2) budget's constants."""
        result = DistributedAllPairs(paper_net).run()
        k, n = paper_net.num_wavelengths, paper_net.num_nodes
        assert result.stats.total_messages <= 3 * (k * n) ** 2
