"""Unit tests for the synchronous and asynchronous simulators."""

import pytest

from repro.distributed.simulator import AsyncSimulator, Process, SyncSimulator
from repro.exceptions import SimulationError


class Echo(Process):
    """Replies once to every message; the initiator starts the exchange."""

    def __init__(self, initiate: bool = False):
        self.initiate = initiate
        self.received: list[tuple[object, object]] = []

    def on_start(self, ctx):
        if self.initiate:
            ctx.broadcast("ping")

    def on_message(self, ctx, sender, payload):
        self.received.append((sender, payload))
        if payload == "ping":
            ctx.send(sender, "pong")


class Flood(Process):
    """Floods a token once (classic broadcast)."""

    def __init__(self, start: bool = False):
        self.start = start
        self.seen = False

    def on_start(self, ctx):
        if self.start:
            self.seen = True
            ctx.broadcast("token")

    def on_message(self, ctx, sender, payload):
        if not self.seen:
            self.seen = True
            ctx.broadcast("token")


def ring(n):
    nodes = list(range(n))
    links = {(i, (i + 1) % n) for i in range(n)} | {((i + 1) % n, i) for i in range(n)}
    return nodes, sorted(links)


class TestSyncSimulator:
    def test_ping_pong(self):
        nodes, links = ring(2)
        procs = {0: Echo(initiate=True), 1: Echo()}
        sim = SyncSimulator(nodes, links, procs)
        stats = sim.run()
        assert procs[1].received == [(0, "ping")]
        assert procs[0].received == [(1, "pong")]
        assert stats.total_messages == 2  # one ping, one pong

    def test_flood_reaches_everyone(self):
        nodes, links = ring(8)
        procs = {v: Flood(start=(v == 0)) for v in nodes}
        sim = SyncSimulator(nodes, links, procs)
        stats = sim.run()
        assert all(p.seen for p in procs.values())
        # Flooding a bidirectional ring takes ~n/2 rounds.
        assert stats.rounds <= 5

    def test_send_to_non_neighbor_rejected(self):
        class Bad(Process):
            def on_start(self, ctx):
                ctx.send(5, "nope")

        nodes, links = ring(8)
        procs = {v: (Bad() if v == 0 else Echo()) for v in nodes}
        with pytest.raises(SimulationError, match="no link"):
            SyncSimulator(nodes, links, procs).run()

    def test_missing_process_rejected(self):
        nodes, links = ring(3)
        with pytest.raises(SimulationError, match="no process"):
            SyncSimulator(nodes, links, {0: Echo()})

    def test_unknown_link_node_rejected(self):
        with pytest.raises(SimulationError, match="unknown node"):
            SyncSimulator([0, 1], [(0, 7)], {0: Echo(), 1: Echo()})

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            SyncSimulator([0, 0], [], {0: Echo()})

    def test_max_rounds_guard(self):
        class Chatter(Process):
            def on_start(self, ctx):
                ctx.broadcast("x")

            def on_message(self, ctx, sender, payload):
                ctx.send(sender, "x")  # never quiesces

        nodes, links = ring(2)
        procs = {v: Chatter() for v in nodes}
        with pytest.raises(SimulationError, match="quiescence"):
            SyncSimulator(nodes, links, procs, max_rounds=10).run()

    def test_per_link_accounting(self):
        nodes, links = ring(2)
        procs = {0: Echo(initiate=True), 1: Echo()}
        sim = SyncSimulator(nodes, links, procs)
        stats = sim.run()
        assert stats.per_link[(0, 1)] >= 1
        assert stats.max_link_load >= 1

    def test_quiescent_from_start(self):
        nodes, links = ring(3)
        procs = {v: Echo() for v in nodes}  # nobody initiates
        stats = SyncSimulator(nodes, links, procs).run()
        assert stats.total_messages == 0
        assert stats.rounds == 0


class TestAsyncSimulator:
    def test_flood_reaches_everyone(self):
        nodes, links = ring(8)
        procs = {v: Flood(start=(v == 0)) for v in nodes}
        sim = AsyncSimulator(nodes, links, procs, seed=11)
        stats = sim.run()
        assert all(p.seen for p in procs.values())
        assert stats.total_messages > 0
        assert sim.end_time > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            nodes, links = ring(6)
            procs = {v: Flood(start=(v == 0)) for v in nodes}
            sim = AsyncSimulator(nodes, links, procs, seed=seed)
            return sim.run().total_messages

        assert run(3) == run(3)

    def test_custom_delay(self):
        nodes, links = ring(4)
        procs = {v: Flood(start=(v == 0)) for v in nodes}
        sim = AsyncSimulator(nodes, links, procs, delay=lambda t, h: 1.0)
        sim.run()
        # The token reaches the antipode at t=2; its (redundant) rebroadcast
        # is the last delivery at t=3.
        assert sim.end_time == pytest.approx(3.0)

    def test_max_events_guard(self):
        class Chatter(Process):
            def on_start(self, ctx):
                ctx.broadcast("x")

            def on_message(self, ctx, sender, payload):
                ctx.send(sender, "x")

        nodes, links = ring(2)
        procs = {v: Chatter() for v in nodes}
        with pytest.raises(SimulationError, match="quiescence"):
            AsyncSimulator(nodes, links, procs, max_events=50).run()
