"""Shared hypothesis strategies: random WDM networks.

Hoisted out of ``tests/property/`` so every suite — the kernel-equivalence
properties and the differential-verification tests in ``tests/verify/`` —
draws from the same distribution.  Networks are built from drawn primitives
(node count, arc set, per-arc wavelength subsets and costs, a metric
conversion model) so that shrinking works: hypothesis minimizes failing
networks to a few nodes and channels.  Conversion costs are drawn from
*metric* models only (flat cost or range-limited linear), keeping CFZ's
chained conversions equivalent to Eq. (1) — see
``repro/baseline/wavelength_graph.py``.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.conversion import (
    FixedCostConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import WDMNetwork

__all__ = ["conversion_models", "wdm_networks", "networks_with_endpoints"]

costs = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)


@st.composite
def conversion_models(draw, num_wavelengths: int, chain_free: bool = False):
    """Draw a conversion model.

    With ``chain_free=True`` only models where a *chain* of conversions
    never beats (in cost) or extends (in support) the direct conversion are
    drawn — the regime in which the CFZ wavelength graph computes exactly
    Eq. (1).  ``RangeLimitedConversion`` is excluded there: its costs are
    metric but its *support* is not transitive (λ₁→λ₂→λ₃ chains past the
    range limit).
    """
    kinds = ["fixed", "none"] if chain_free else ["fixed", "none", "range"]
    kind = draw(st.sampled_from(kinds))
    if kind == "none":
        return NoConversion()
    if kind == "range":
        limit = draw(st.integers(0, num_wavelengths))
        step = draw(st.floats(0.0, 5.0, allow_nan=False))
        return RangeLimitedConversion(limit, cost_per_step=step)
    return FixedCostConversion(draw(st.floats(0.0, 10.0, allow_nan=False)))


@st.composite
def wdm_networks(
    draw, max_nodes: int = 7, max_wavelengths: int = 4, chain_free: bool = False
):
    """Draw a small random WDMNetwork."""
    n = draw(st.integers(2, max_nodes))
    k = draw(st.integers(1, max_wavelengths))
    model = draw(conversion_models(k, chain_free=chain_free))
    net = WDMNetwork(num_wavelengths=k, default_conversion=model)
    for v in range(n):
        net.add_node(v)
    possible_arcs = [(u, v) for u in range(n) for v in range(n) if u != v]
    arcs = draw(
        st.lists(st.sampled_from(possible_arcs), unique=True, max_size=3 * n)
    )
    for tail, head in arcs:
        wavelengths = draw(
            st.lists(st.integers(0, k - 1), unique=True, min_size=0, max_size=k)
        )
        table = {w: draw(costs) for w in wavelengths}
        net.add_link(tail, head, table)
    return net


@st.composite
def networks_with_endpoints(draw, **kw):
    """A network plus a distinct (source, target) pair."""
    net = draw(wdm_networks(**kw))
    n = net.num_nodes
    source = draw(st.integers(0, n - 1))
    target = draw(st.integers(0, n - 1).filter(lambda t: t != source))
    return net, source, target
