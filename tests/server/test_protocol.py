"""Wire-protocol unit and property tests (no sockets, no server).

The frame codec is pure bytes-in/bytes-out, so everything here is fast
and deterministic: hypothesis proves encode/decode round-trips across
payload sizes (including empty and >64 KiB), and the rejection tests
enumerate every way a frame can be malformed — truncation at each
boundary, garbage magic, wrong version, unknown opcodes, reserved
flags, oversized declared lengths, undecodable payloads.
"""

import argparse
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import ProtocolError
from repro.server import protocol
from repro.server.protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    Op,
    decode_frame,
    encode_frame,
    valid_ip,
    valid_port,
)

OPCODES = sorted(Op)

payloads = st.one_of(
    st.none(),
    st.binary(min_size=0, max_size=256),
    # Force the >64 KiB regime the issue calls out explicitly.
    st.binary(min_size=65_537, max_size=80_000),
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=8),
    st.lists(st.tuples(st.integers(), st.integers()), max_size=16),
    st.floats(allow_nan=False),
)


@given(op=st.sampled_from(OPCODES), payload=payloads)
@settings(max_examples=60, deadline=None)
def test_frame_round_trip(op, payload):
    frame = encode_frame(op, payload)
    decoded_op, decoded_payload, consumed = decode_frame(frame)
    assert decoded_op == op
    assert decoded_payload == payload
    assert consumed == len(frame)


@given(op=st.sampled_from(OPCODES), payload=payloads, trailer=st.binary(max_size=32))
@settings(max_examples=30, deadline=None)
def test_decode_ignores_trailing_bytes(op, payload, trailer):
    frame = encode_frame(op, payload)
    decoded_op, decoded_payload, consumed = decode_frame(frame + trailer)
    assert (decoded_op, decoded_payload) == (op, payload)
    assert consumed == len(frame)


def test_empty_payload_is_minimal():
    frame = encode_frame(Op.STATS, None)
    _, payload, consumed = decode_frame(frame)
    assert payload is None
    assert consumed == len(frame)
    assert len(frame) < HEADER_SIZE + 16


@given(cut=st.integers(min_value=0, max_value=HEADER_SIZE - 1))
@settings(max_examples=HEADER_SIZE, deadline=None)
def test_truncated_header_rejected(cut):
    frame = encode_frame(Op.ROUTE, (1, 2))
    with pytest.raises(ProtocolError, match="truncated"):
        decode_frame(frame[:cut])


def test_truncated_payload_rejected():
    frame = encode_frame(Op.ROUTE, list(range(100)))
    with pytest.raises(ProtocolError, match="truncated"):
        decode_frame(frame[: len(frame) - 1])


@given(garbage=st.binary(min_size=HEADER_SIZE, max_size=64))
@settings(max_examples=40, deadline=None)
def test_garbage_never_parses_silently(garbage):
    """Random bytes either fail loudly or (absurdly unlikely) parse clean."""
    if garbage[:4] == protocol.MAGIC:
        return  # not garbage: a forged header, covered elsewhere
    with pytest.raises(ProtocolError):
        decode_frame(garbage)


def _forge(magic=protocol.MAGIC, version=protocol.VERSION, op=Op.STATS,
           flags=0, length=None, body=b""):
    if length is None:
        length = len(body)
    return protocol._HEADER.pack(magic, version, int(op), flags, length) + body


def test_bad_magic_rejected():
    with pytest.raises(ProtocolError, match="magic"):
        decode_frame(_forge(magic=b"XXXX", body=pickle.dumps(None)))


def test_wrong_version_rejected():
    with pytest.raises(ProtocolError, match="version"):
        decode_frame(_forge(version=99, body=pickle.dumps(None)))


def test_unknown_opcode_rejected():
    with pytest.raises(ProtocolError, match="opcode"):
        decode_frame(_forge(op=0x33, body=pickle.dumps(None)))


def test_reserved_flags_rejected():
    with pytest.raises(ProtocolError, match="flags"):
        decode_frame(_forge(flags=1, body=pickle.dumps(None)))


def test_oversized_length_rejected_before_reading_payload():
    with pytest.raises(ProtocolError, match="MAX_PAYLOAD"):
        decode_frame(_forge(length=MAX_PAYLOAD + 1))


def test_undecodable_payload_rejected():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_frame(_forge(body=b"\x80not-a-pickle"))


def test_encode_refuses_oversized_payload(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_PAYLOAD", 64)
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(Op.ROUTE, b"x" * 128)


# -- path wire form ----------------------------------------------------------


def test_path_round_trip():
    path = Semilightpath(
        hops=(Hop(1, 2, 0), Hop(2, 3, 2)), total_cost=3.75
    )
    wire = protocol.encode_path(path)
    rebuilt = protocol.decode_path(wire)
    assert rebuilt == path
    assert rebuilt.hops == path.hops
    assert rebuilt.total_cost == path.total_cost


def test_none_path_round_trip():
    assert protocol.encode_path(None) is None
    assert protocol.decode_path(None) is None


def test_wire_form_survives_pickle_byte_identically():
    path = Semilightpath(hops=(Hop("a", "b", 1),), total_cost=0.1 + 0.2)
    wire = protocol.encode_path(path)
    again = pickle.loads(pickle.dumps(wire))
    assert protocol.decode_path(again).total_cost == path.total_cost


# -- argparse validators -----------------------------------------------------


@pytest.mark.parametrize("ip", ["127.0.0.1", "0.0.0.0", "192.168.1.9"])
def test_valid_ip_accepts(ip):
    assert valid_ip(ip) == ip


@pytest.mark.parametrize("ip", ["localhost-ish", "999.1.2.3.4", "::1x", ""])
def test_valid_ip_rejects(ip):
    with pytest.raises(argparse.ArgumentTypeError):
        valid_ip(ip)


@pytest.mark.parametrize("port,expected", [("0", 0), ("80", 80), ("65535", 65535)])
def test_valid_port_accepts(port, expected):
    assert valid_port(port) == expected


@pytest.mark.parametrize("port", ["-1", "65536", "http", ""])
def test_valid_port_rejects(port):
    with pytest.raises(argparse.ArgumentTypeError):
        valid_port(port)
