"""End-to-end server tests: byte-identity, faults, crashes, cleanup.

One module-scoped UDS server (debug mode, 2 workers) backs most tests;
the differential anchor is always the in-process
:class:`~repro.core.routing.LiangShenRouter` on the same network —
every hop and every cost must match exactly, including after PATCH
frames have written fault batches through shared memory.  The rougher
suites get their own short-lived servers: raw-socket malformed frames,
worker SIGKILL mid-request, TCP parity, and shutdown cleanup.
"""

import os
import socket
import threading
import time

import pytest

from repro.core.routing import LiangShenRouter
from repro.exceptions import (
    NoPathError,
    ProtocolError,
    RemoteRouterError,
    WorkerCrashError,
)
from repro.faults.resilience import RetryPolicy
from repro.server import RouterClient, RouterServer
from repro.server import protocol
from repro.server.protocol import Op
from repro.shortestpath.delta import DeltaOverlay
from repro.shortestpath.shared import leaked_segments
from repro.topology.reference import paper_figure1_network


@pytest.fixture(scope="module")
def server():
    with RouterServer(
        paper_figure1_network(), workers=2, uds="", debug=True
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with RouterClient(server.address) as cli:
        yield cli


@pytest.fixture(scope="module")
def network():
    return paper_figure1_network()


@pytest.fixture(scope="module")
def local_router(network):
    return LiangShenRouter(network)


# -- differential byte-identity ----------------------------------------------


def test_route_matches_in_process_router(client, local_router, network):
    nodes = network.nodes()
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            try:
                expected = local_router.route(source, target).path
            except NoPathError:
                with pytest.raises(NoPathError):
                    client.route(source, target)
                continue
            remote = client.route(source, target)
            assert remote == expected
            assert remote.hops == expected.hops
            assert remote.total_cost == expected.total_cost


def test_route_batch_matches_and_marks_unreachable(client, local_router, network):
    nodes = network.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    remote = client.route_batch(pairs)
    assert len(remote) == len(pairs)
    for (source, target), got in zip(pairs, remote):
        try:
            expected = local_router.route(source, target).path
        except NoPathError:
            expected = None
        assert got == expected


def test_route_all_pairs_is_serial_identical(client, local_router):
    serial = local_router.route_all_pairs()
    remote = client.route_all_pairs(workers=2)
    assert remote.paths == serial.paths
    # Identity extends to iteration order and the aggregated stats.
    assert list(remote.paths) == list(serial.paths)
    assert remote.stats == serial.stats


def test_snapshot_and_stats_shapes(client, server, network):
    snapshot = client.snapshot()
    assert snapshot["segment"] == server.segment_name
    assert snapshot["workers"] == 2
    assert sorted(snapshot["sources"]) == sorted(network.nodes())
    stats = client.stats()
    assert len(stats["workers"]) == 2
    assert all(w["alive"] for w in stats["workers"])
    assert stats["pending"] == 0


# -- PATCH parity vs the in-process overlay ----------------------------------


def test_patch_parity_against_in_process_delta(client, local_router, network):
    """Wire PATCH faults must route exactly like a local DeltaOverlay.

    The model mirrors the worker bit-for-bit: a private ``G_all`` with a
    DeltaOverlay applying the same events, queried with ``run_tree``.
    """
    from repro.core.auxiliary import build_all_pairs_graph
    from repro.core.routing import run_tree

    model_aux = build_all_pairs_graph(network)
    model_delta = DeltaOverlay(model_aux)
    links = list(network.links())
    fail_ops = [("fail_link", (links[0].tail, links[0].head))]
    lam = sorted(links[1].costs)[0]
    fail_ops.append(("fail_channel", (links[1].tail, links[1].head, lam)))

    reply = client.patch(fail_ops)
    assert reply["epoch"] % 2 == 0
    assert reply["inexpressible"] == []
    assert reply["changed_slots"] > 0
    for name, args in fail_ops:
        getattr(model_delta, name)(*args)

    try:
        for source in network.nodes():
            tree, _run = run_tree(model_aux, source)
            for target in network.nodes():
                if source == target:
                    continue
                expected = tree.get(target)
                try:
                    got = client.route(source, target)
                except NoPathError:
                    got = None
                assert got == expected, (source, target)
    finally:
        recover_ops = [
            (name.replace("fail_", "recover_"), args)
            for name, args in fail_ops
        ]
        reply = client.patch(recover_ops)
        for name, args in recover_ops:
            getattr(model_delta, name)(*args)
    assert reply["masked_edges"] == 0

    # Net-zero churn: back to the pristine all-pairs answer.
    pristine = local_router.route_all_pairs()
    assert client.route_all_pairs().paths == pristine.paths


def test_patch_rejects_malformed_ops(client):
    with pytest.raises((ProtocolError, RemoteRouterError)):
        client.patch([("drop_table", ("a", "b"))])
    with pytest.raises((ProtocolError, RemoteRouterError)):
        client.patch("not-a-list")
    # The server survived both rejections.
    assert client.stats()["pending"] == 0


# -- protocol abuse over a raw socket ----------------------------------------


def _raw_connect(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(server.address)
    return sock


def test_garbage_bytes_get_err_then_disconnect(server, client):
    sock = _raw_connect(server)
    try:
        sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 32)
        reply = protocol.read_frame(sock)
        assert reply is not None
        op, payload = reply
        assert op == Op.ERR
        assert payload[0] == "ProtocolError"
        # The connection is dropped after a framing error (a reset is
        # fine too: the server closed with our junk still buffered).
        try:
            assert sock.recv(1) == b""
        except ConnectionResetError:
            pass
    finally:
        sock.close()
    # The server itself is unharmed.
    assert client.stats()["pending"] == 0


def test_truncated_frame_drops_connection_only(server, client):
    frame = protocol.encode_frame(Op.ROUTE, (1, 2))
    sock = _raw_connect(server)
    try:
        sock.sendall(frame[: len(frame) - 3])
        sock.shutdown(socket.SHUT_WR)
        # Mid-frame EOF: the server may manage a best-effort ERR or just
        # close; either way it must not hang or die.
        sock.settimeout(5.0)
        try:
            data = sock.recv(4096)
        except OSError:
            data = b""
        if data:
            op, payload, _consumed = protocol.decode_frame(data)
            assert op == Op.ERR
    finally:
        sock.close()
    assert client.route(1, 2) is not None


def test_oversized_declared_length_rejected(server, client):
    header = protocol._HEADER.pack(
        protocol.MAGIC, protocol.VERSION, int(Op.ROUTE), 0, protocol.MAX_PAYLOAD + 1
    )
    sock = _raw_connect(server)
    try:
        sock.sendall(header)
        reply = protocol.read_frame(sock)
        assert reply is not None and reply[0] == Op.ERR
        assert "MAX_PAYLOAD" in reply[1][1]
    finally:
        sock.close()
    assert client.stats()["pending"] == 0


def test_unknown_opcode_via_forged_frame(server, client):
    import pickle

    body = pickle.dumps((1, 2))
    header = protocol._HEADER.pack(
        protocol.MAGIC, protocol.VERSION, 0x39, 0, len(body)
    )
    sock = _raw_connect(server)
    try:
        sock.sendall(header + body)
        reply = protocol.read_frame(sock)
        assert reply is not None and reply[0] == Op.ERR
    finally:
        sock.close()
    assert client.stats()["pending"] == 0


# -- concurrency --------------------------------------------------------------


def test_concurrent_clients_agree_with_local_router(server, local_router, network):
    nodes = network.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    expected = {}
    for source, target in pairs:
        try:
            expected[(source, target)] = local_router.route(source, target).path
        except NoPathError:
            expected[(source, target)] = None
    mismatches = []
    errors = []

    def hammer(rounds):
        try:
            with RouterClient(server.address) as cli:
                for _ in range(rounds):
                    for source, target in pairs:
                        try:
                            got = cli.route(source, target)
                        except NoPathError:
                            got = None
                        if got != expected[(source, target)]:
                            mismatches.append((source, target, got))
        except Exception as exc:  # noqa: BLE001 - reported via the list
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(3,), daemon=True)
        for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert errors == []
    assert mismatches == []


def test_sleep_requires_debug_flag(network):
    with RouterServer(network, workers=1, uds="") as srv:
        with RouterClient(srv.address) as cli:
            with pytest.raises(ProtocolError, match="debug"):
                cli.sleep(0.01)


# -- worker crash and respawn -------------------------------------------------


def test_worker_kill_mid_request_is_retryable_not_a_hang(network):
    with RouterServer(
        network, workers=1, uds="", debug=True, request_timeout=30.0
    ) as srv:
        raw = RouterClient(srv.address, retry=RetryPolicy(max_attempts=1))
        victim = srv.worker_pids()[0]

        failure = {}

        def pinned():
            try:
                raw.sleep(5.0)
            except Exception as exc:  # noqa: BLE001 - inspected below
                failure["exc"] = exc

        thread = threading.Thread(target=pinned, daemon=True)
        thread.start()
        # Wait until the worker has *claimed* the sleep job (a job is
        # pending the instant it is submitted; killing before the claim
        # would just hand the queued task to the respawned worker).
        deadline = time.monotonic() + 5.0
        claimed = False
        while time.monotonic() < deadline and not claimed:
            with srv._lock:
                claimed = any(
                    job.worker is not None for job in srv._jobs.values()
                )
            time.sleep(0.02)
        assert claimed, "sleep job never reached the worker"
        os.kill(victim, 9)
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "killed worker stranded the request"
        assert isinstance(failure.get("exc"), WorkerCrashError)

        # The monitor must have respawned the slot; service continues.
        deadline = time.monotonic() + 10.0
        with RouterClient(srv.address) as probe:
            while time.monotonic() < deadline:
                stats = probe.stats()
                if stats["respawns"] >= 1 and all(
                    w["alive"] for w in stats["workers"]
                ):
                    break
                time.sleep(0.05)
            stats = probe.stats()
            assert stats["respawns"] >= 1
            assert all(w["alive"] for w in stats["workers"])
            assert stats["workers"][0]["pid"] != victim
            assert probe.route(1, 2) is not None
        raw.close()


def test_default_retry_policy_rides_through_a_crash(network):
    with RouterServer(
        network, workers=1, uds="", debug=True, request_timeout=30.0
    ) as srv:
        victim = srv.worker_pids()[0]
        retrying = RouterClient(
            srv.address, retry=RetryPolicy(max_attempts=3, base_delay=0.2)
        )
        local = LiangShenRouter(network)

        def assassin():
            time.sleep(0.5)
            try:
                os.kill(victim, 9)
            except ProcessLookupError:
                pass

        threading.Thread(target=assassin, daemon=True).start()
        with retrying:
            # ``sleep()`` itself is not retried (it is a raw debug call),
            # so drive the retry loop explicitly: the first attempt dies
            # with the worker, the retry lands on the respawned slot.
            result = retrying._call_retrying(Op.SLEEP, 1.5)
            assert result["slept"] == 1.5
            assert retrying.route(1, 2) == local.route(1, 2).path


# -- TCP transport ------------------------------------------------------------


def test_tcp_server_parity(network, local_router):
    with RouterServer(network, workers=1, host="127.0.0.1", port=0) as srv:
        host, port = srv.address
        assert port > 0
        with RouterClient((host, port)) as cli:
            assert cli.route(1, 2) == local_router.route(1, 2).path
            assert (
                cli.route_all_pairs().paths
                == local_router.route_all_pairs().paths
            )


# -- shutdown and cleanup -----------------------------------------------------


def test_shutdown_frame_unlinks_everything(network):
    srv = RouterServer(network, workers=1, uds="").start()
    segment = srv.segment_name
    uds_path = srv.address
    with RouterClient(srv.address) as cli:
        assert cli.shutdown()["closing"] is True
    assert srv.join(timeout=10.0)
    srv.close()  # blocks until the SHUTDOWN-triggered close completes
    assert segment not in leaked_segments()
    assert not os.path.exists(uds_path)
    with pytest.raises(RemoteRouterError):
        RouterClient(uds_path).route(1, 2)


def test_close_is_idempotent_and_unlinks(network):
    srv = RouterServer(network, workers=1, uds="").start()
    segment = srv.segment_name
    srv.close()
    srv.close()
    assert segment not in leaked_segments()
