"""Graceful SIGTERM/SIGINT shutdown of a serving process.

The SHUTDOWN-frame path was already clean; these tests cover the
supervisor path: a ``python -m repro serve`` process killed with TERM
(or INT) must drain, unlink its shared segment and socket, and exit 0 —
``leaked_segments()`` is the ground truth, scanning ``/dev/shm`` after
the process is gone.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.io import network_to_json
from repro.server import RouterClient, RouterServer
from repro.server.protocol import Op
from repro.shortestpath.shared import leaked_segments
from repro.topology.reference import paper_figure1_network

_SRC = str(Path(repro.__file__).resolve().parent.parent)

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="POSIX signals required"
)


@pytest.fixture
def network_file(tmp_path):
    path = tmp_path / "net.json"
    path.write_text(network_to_json(paper_figure1_network()))
    return path


def _spawn_server(network_file, uds_path):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(network_file),
            "--uds", str(uds_path), "--workers", "1",
        ],
        env={**os.environ, "PYTHONPATH": _SRC},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server died during startup:\n{process.stdout.read()}"
            )
        if os.path.exists(uds_path):
            try:
                with RouterClient(str(uds_path)) as probe:
                    probe.snapshot()
                return process
            except Exception:
                pass
        time.sleep(0.05)
    process.kill()
    raise AssertionError("server did not come up in 30s")


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_shutdown_is_clean(network_file, tmp_path, signum):
    before = set(leaked_segments())
    uds_path = tmp_path / "router.sock"
    process = _spawn_server(network_file, uds_path)
    try:
        process.send_signal(signum)
        code = process.wait(timeout=30.0)
    finally:
        if process.poll() is None:
            process.kill()
    output = process.stdout.read()
    assert code == 0, f"exit {code}:\n{output}"
    assert set(leaked_segments()) - before == set(), output
    assert not os.path.exists(uds_path)


def test_sigterm_drains_inflight_requests(network_file, tmp_path):
    """A request in flight when TERM lands still gets its answer."""
    before = set(leaked_segments())
    uds_path = tmp_path / "router.sock"
    process = _spawn_server(network_file, uds_path)
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30.0)
        sock.connect(str(uds_path))
        from repro.server import protocol

        protocol.send_frame(sock, Op.ROUTE, (1, 7))
        process.send_signal(signal.SIGTERM)
        # The drain window must flush the reply before teardown.
        reply = protocol.read_frame(sock)
        assert reply is not None
        op, payload = reply
        assert op == Op.OK
        assert payload["path"] is not None
        sock.close()
        code = process.wait(timeout=30.0)
    finally:
        if process.poll() is None:
            process.kill()
    assert code == 0
    assert set(leaked_segments()) - before == set()


def test_in_process_close_drains_claimed_jobs(paper_net):
    """``close()`` waits for a claimed job instead of stranding it.

    Uses a debug server's SLEEP job (pins a worker) to guarantee a job
    is in flight when close() begins.
    """
    server = RouterServer(
        paper_net, workers=1, uds="", debug=True, drain_timeout=5.0
    ).start()
    client = RouterClient(server.address)
    result: dict = {}

    import threading

    def sleeper():
        result["sleep"] = client.sleep(0.5)

    thread = threading.Thread(target=sleeper, daemon=True)
    thread.start()
    # Wait until the worker has claimed the job.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        with server._lock:
            if any(job.worker is not None for job in server._jobs.values()):
                break
        time.sleep(0.01)
    server.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert result["sleep"]["slept"] == 0.5
    client.close()
    assert server.segment_name not in leaked_segments()
