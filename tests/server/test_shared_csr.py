"""Shared-memory CSR lifecycle: publish, attach, patch, epoch, cleanup.

Everything the zero-copy layer promises is pinned here: attached graphs
route byte-identically to the originals, double attaches are safe, the
seqlock epoch brackets are enforced, DeltaOverlay writes through the
segment to every attached view, and — the part that keeps ``/dev/shm``
clean — segments never outlive their owner, even when the owner forgets
to unlink or an attaching process dies.
"""

import pickle
import struct
import subprocess
import sys
import textwrap

import pytest
from multiprocessing import shared_memory

from repro.core.auxiliary import build_all_pairs_graph
from repro.core.routing import run_tree
from repro.exceptions import SharedSegmentError
from repro.shortestpath import DeltaOverlay
from repro.shortestpath.shared import (
    SEGMENT_PREFIX,
    SharedCSR,
    active_segments,
    attach_all_pairs_graph,
    leaked_segments,
    share_all_pairs_graph,
)


@pytest.fixture
def shared_aux(paper_net):
    aux = build_all_pairs_graph(paper_net)
    shared = share_all_pairs_graph(aux)
    yield aux, shared
    shared.unlink()


def test_attach_routes_byte_identically(shared_aux, paper_net):
    aux, shared = shared_aux
    attached = attach_all_pairs_graph(shared.name)
    for source in paper_net.nodes():
        original, run_a = run_tree(aux, source)
        remote, run_b = run_tree(attached, source)
        assert original == remote
        assert run_a.settled == run_b.settled
        assert run_a.relaxations == run_b.relaxations
    attached.shared_csr.close()


def test_attach_rebuilds_exact_id_maps(shared_aux):
    aux, shared = shared_aux
    attached = attach_all_pairs_graph(shared.name)
    assert attached.source_ids == aux.source_ids
    assert attached.sink_ids == aux.sink_ids
    assert attached.x_ids == aux.x_ids
    assert attached.y_ids == aux.y_ids
    assert list(attached.decode) == list(aux.decode)
    assert attached.sizes == aux.sizes
    attached.shared_csr.close()


def test_double_attach_is_safe(shared_aux, paper_net):
    _aux, shared = shared_aux
    first = attach_all_pairs_graph(shared.name)
    second = attach_all_pairs_graph(shared.name)
    source = paper_net.nodes()[0]
    tree_one, _ = run_tree(first, source)
    first.shared_csr.close()
    # Closing one attached handle must not disturb the other's views.
    tree_two, _ = run_tree(second, source)
    assert tree_one == tree_two
    second.shared_csr.close()


def test_attach_unknown_name_raises():
    with pytest.raises(SharedSegmentError, match="no shared segment"):
        SharedCSR.attach("repro_does_not_exist_123")


def test_attach_rejects_garbage_segment():
    shm = shared_memory.SharedMemory(
        name=f"{SEGMENT_PREFIX}garbage_test", create=True, size=256
    )
    try:
        shm.buf[:8] = b"NOTMAGIC"
        with pytest.raises(SharedSegmentError, match="bad magic"):
            SharedCSR.attach(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_attach_rejects_wrong_version(shared_aux):
    _aux, shared = shared_aux
    # Corrupt the version field in place; restore before teardown.
    struct.pack_into("<I", shared._shm.buf, 8, 99)
    try:
        with pytest.raises(SharedSegmentError, match="version"):
            SharedCSR.attach(shared.name)
    finally:
        struct.pack_into("<I", shared._shm.buf, 8, 1)


def test_meta_blob_round_trips():
    from repro.shortestpath.structures import GraphBuilder

    builder = GraphBuilder(2)
    builder.add_edge(0, 1, 1.5, 0)
    graph = builder.build()
    meta = pickle.dumps({"hello": "world"})
    with SharedCSR.create(graph, meta=meta) as shared:
        assert pickle.loads(shared.meta) == {"hello": "world"}
        assert shared.num_nodes == 2
        assert shared.num_edges == 1


# -- seqlock epoch -----------------------------------------------------------


def test_patch_bracket_bumps_epoch_twice(shared_aux):
    _aux, shared = shared_aux
    assert shared.epoch == 0
    with shared.patch():
        assert shared.epoch == 1  # odd while in flight
    assert shared.epoch == 2
    with shared.patch():
        pass
    assert shared.epoch == 4


def test_patch_bracket_misuse_raises(shared_aux):
    _aux, shared = shared_aux
    with pytest.raises(SharedSegmentError, match="without begin_patch"):
        shared.end_patch()
    shared.begin_patch()
    with pytest.raises(SharedSegmentError, match="already open"):
        shared.begin_patch()
    shared.end_patch()


def test_only_owner_may_patch(shared_aux):
    _aux, shared = shared_aux
    attached = SharedCSR.attach(shared.name)
    try:
        with pytest.raises(SharedSegmentError, match="owner"):
            attached.begin_patch()
    finally:
        attached.close()


def test_read_stable_retries_through_a_patch(shared_aux):
    _aux, shared = shared_aux
    calls = []

    def reader():
        calls.append(len(calls))
        if len(calls) == 1:
            # Simulate a racing writer: the epoch moves mid-computation,
            # so the first result must be discarded and recomputed.
            shared._set_epoch(shared.epoch + 2)
        return "value"

    value, epoch = shared.read_stable(reader)
    assert value == "value"
    assert len(calls) == 2
    assert epoch == shared.epoch


def test_read_stable_gives_up_while_patch_held_open(shared_aux):
    _aux, shared = shared_aux
    shared.begin_patch()
    try:
        with pytest.raises(SharedSegmentError, match="no stable read"):
            shared.read_stable(lambda: None, retries=3, pause=0.0)
    finally:
        shared.end_patch()


def test_delta_overlay_writes_through_to_attached_views(shared_aux, paper_net):
    _aux, shared = shared_aux
    owner_view = attach_all_pairs_graph(shared)
    reader = attach_all_pairs_graph(shared.name)
    delta = DeltaOverlay(owner_view)
    link = next(iter(paper_net.links()))
    wavelength = sorted(link.costs)[0]
    baseline, _ = run_tree(reader, link.tail)
    with shared.patch():
        slots = delta.fail_channel(link.tail, link.head, wavelength)
    assert slots, "the first channel of a real link must be maskable"
    weights = reader.graph.csr()[2]
    assert all(weights[slot] == float("inf") for slot in slots)
    with shared.patch():
        delta.recover_channel(link.tail, link.head, wavelength)
    recovered, _ = run_tree(reader, link.tail)
    assert recovered == baseline
    reader.shared_csr.close()


# -- lifecycle ---------------------------------------------------------------


def test_unlink_removes_segment_and_registry(paper_net):
    aux = build_all_pairs_graph(paper_net)
    shared = share_all_pairs_graph(aux)
    name = shared.name
    assert name in active_segments()
    assert name in leaked_segments()
    shared.unlink()
    assert name not in active_segments()
    assert name not in leaked_segments()
    shared.unlink()  # idempotent


def test_context_manager_unlinks_owner(paper_net):
    aux = build_all_pairs_graph(paper_net)
    with share_all_pairs_graph(aux) as shared:
        name = shared.name
        assert name in leaked_segments()
    assert name not in leaked_segments()


def test_attacher_process_death_does_not_unlink(shared_aux, paper_net):
    """A worker exiting (cleanly or not) must never tear the segment down."""
    _aux, shared = shared_aux
    source = paper_net.nodes()[0]
    child = textwrap.dedent(
        f"""
        from repro.shortestpath.shared import attach_all_pairs_graph
        from repro.core.routing import run_tree
        aux = attach_all_pairs_graph({shared.name!r})
        tree, _ = run_tree(aux, {source!r})
        raise SystemExit(0 if tree else 3)
        """
    )
    result = subprocess.run(
        [sys.executable, "-c", child], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "Error" not in result.stderr  # no BufferError/KeyError noise
    assert shared.name in leaked_segments()
    probe = attach_all_pairs_graph(shared.name)
    tree, _ = run_tree(probe, source)
    assert tree
    probe.shared_csr.close()


def test_owner_atexit_cleans_forgotten_segments(paper_net):
    """An owner that exits without unlink must still leave /dev/shm clean."""
    child = textwrap.dedent(
        """
        from repro.core.auxiliary import build_all_pairs_graph
        from repro.shortestpath.shared import share_all_pairs_graph
        from repro.topology.reference import paper_figure1_network
        shared = share_all_pairs_graph(
            build_all_pairs_graph(paper_figure1_network())
        )
        print(shared.name)
        # ... and exit without unlinking: the atexit hook must cover us.
        """
    )
    result = subprocess.run(
        [sys.executable, "-c", child], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    name = result.stdout.strip()
    assert name.startswith(SEGMENT_PREFIX)
    assert name not in leaked_segments()
