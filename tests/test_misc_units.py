"""Unit coverage for the small shared helpers.

``_validation``, ``instrumentation``, ``messages``, the warmup window,
the dumbbell generator, and the ``python -m repro`` entry point.
"""

import math
import subprocess
import sys

import pytest

from repro._validation import (
    check_finite,
    check_nonnegative,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    require,
    unique,
)


class TestValidationHelpers:
    def test_nonnegative(self):
        assert check_nonnegative(0, "x") == 0.0
        assert check_nonnegative(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            check_nonnegative(-1, "x")
        with pytest.raises(ValueError):
            check_nonnegative(float("nan"), "x")
        with pytest.raises(TypeError):
            check_nonnegative("3", "x")

    def test_finite(self):
        assert check_finite(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_finite(math.inf, "x")

    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")
        with pytest.raises(KeyError):
            require(False, "boom", exc=KeyError)

    def test_unique(self):
        unique([1, 2, 3], "id")
        with pytest.raises(ValueError, match="duplicate id"):
            unique([1, 2, 1], "id")


class TestInstrumentation:
    def test_total_heap_ops(self, paper_net):
        from repro.core.routing import LiangShenRouter

        stats = LiangShenRouter(paper_net).route(1, 7).stats
        assert stats.total_heap_ops == sum(stats.heap.values())
        assert stats.total_heap_ops > 0


class TestMessageStats:
    def test_merge(self):
        from repro.distributed.messages import MessageStats

        a = MessageStats()
        a.record("x", "y", 3)
        a.rounds = 2
        b = MessageStats()
        b.record("x", "y", 1)
        b.record("y", "z", 5)
        b.rounds = 4
        a.merge(b)
        assert a.total_messages == 9
        assert a.rounds == 6
        assert a.per_link[("x", "y")] == 4
        assert a.max_link_load == 5

    def test_empty_max_load(self):
        from repro.distributed.messages import MessageStats

        assert MessageStats().max_link_load == 0


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        from repro.topology.reference import nsfnet_network
        from repro.wdm.provisioning import SemilightpathProvisioner
        from repro.wdm.simulation import DynamicSimulation
        from repro.wdm.traffic import TrafficGenerator

        net = nsfnet_network(num_wavelengths=2)
        trace = TrafficGenerator(net.nodes(), 20.0, 1.0, seed=81).generate(100)
        full = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        windowed = DynamicSimulation(
            SemilightpathProvisioner(net), warmup=40
        ).run(trace)
        assert full.offered == 100
        assert windowed.offered == 60
        # Warmup connections still consumed resources: the measured window
        # sees the loaded network, so blocking can only be >= the same
        # window measured cold.  (Weak check: measured counts consistent.)
        assert windowed.admitted + windowed.blocked == 60

    def test_warmup_validation(self):
        from repro.topology.reference import nsfnet_network
        from repro.wdm.provisioning import SemilightpathProvisioner
        from repro.wdm.simulation import DynamicSimulation

        net = nsfnet_network(num_wavelengths=2)
        with pytest.raises(ValueError):
            DynamicSimulation(SemilightpathProvisioner(net), warmup=-1)

    def test_warmup_departures_still_release(self):
        from repro.topology.reference import nsfnet_network
        from repro.wdm.provisioning import SemilightpathProvisioner
        from repro.wdm.simulation import DynamicSimulation
        from repro.wdm.traffic import TrafficGenerator

        net = nsfnet_network(num_wavelengths=2)
        prov = SemilightpathProvisioner(net)
        trace = TrafficGenerator(net.nodes(), 10.0, 1.0, seed=82).generate(50)
        DynamicSimulation(prov, warmup=25).run(trace)
        assert prov.num_active == 0


class TestDumbbell:
    def test_shape(self):
        from repro.topology.generators import dumbbell_network

        net = dumbbell_network(4, 2, bridge_length=2)
        assert net.num_nodes == 10
        # Clusters are strongly connected through the bridge.
        from repro.core.routing import LiangShenRouter

        result = LiangShenRouter(net).route(0, 9)
        assert result.path.num_hops >= 4  # must cross the whole bridge

    def test_bridge_is_the_bottleneck(self):
        from repro.analysis.fairness import blocking_concentration
        from repro.topology.generators import dumbbell_network
        from repro.wdm.provisioning import SemilightpathProvisioner
        from repro.wdm.simulation import DynamicSimulation
        from repro.wdm.traffic import TrafficGenerator

        net = dumbbell_network(4, 2)  # left {0..3}, bridge {4}, right {5..8}
        trace = TrafficGenerator(net.nodes(), 30.0, 1.0, seed=83).generate(300)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        assert stats.blocked > 0
        # The vast majority of blocking must involve bridge-crossing pairs
        # (complete clusters have rich internal capacity by comparison).
        left = set(range(4))
        right = set(range(5, 9))
        crossing = sum(
            count
            for (s, t), count in stats.per_pair_blocked.items()
            if not ({s, t} <= left or {s, t} <= right)
        )
        assert crossing >= 0.7 * stats.blocked
        assert 0.0 <= blocking_concentration(stats) <= 1.0


class TestMainEntryPoint:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "route" in result.stdout
        assert "experiments" in result.stdout
