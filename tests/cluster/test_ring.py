"""Consistent-hash ring: spread, minimal movement, determinism."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cluster.ring import HashRing, stable_hash64

_SRC = str(Path(repro.__file__).resolve().parent.parent)


class TestBasics:
    def test_empty_ring_rejects_lookups(self):
        with pytest.raises(ValueError):
            HashRing().shard_for("x")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_membership(self):
        ring = HashRing(range(3))
        assert len(ring) == 3
        assert 2 in ring
        assert 5 not in ring
        with pytest.raises(ValueError):
            ring.add_shard(1)
        ring.remove_shard(1)
        assert ring.shards == (0, 2)
        with pytest.raises(ValueError):
            ring.remove_shard(1)

    def test_single_shard_owns_everything(self):
        ring = HashRing([0])
        assert all(ring.shard_for(k) == 0 for k in range(100))


class TestSpread:
    def test_chi_squared_spread_bound(self):
        """Placement over many keys is statistically uniform.

        χ² = Σ (observed − expected)² / expected over the shard counts.
        For 4 shards (3 degrees of freedom) the 99.9th percentile of χ²
        is ≈ 16.3.  Arc-length variance inflates the statistic beyond
        the multinomial at low vnode counts (the spread tightens as
        ``1/√vnodes``), so the bound is asserted at ``vnodes=512``;
        the hash is deterministic so this is a regression pin, not a
        flaky statistical test — the χ² percentile justifies the
        constant.
        """
        shards = 4
        keys = [f"node-{i}" for i in range(4000)]
        ring = HashRing(range(shards), vnodes=512)
        counts = ring.spread(keys)
        expected = len(keys) / shards
        chi2 = sum(
            (count - expected) ** 2 / expected for count in counts.values()
        )
        assert chi2 < 16.3, f"spread too skewed: {counts} (chi2={chi2:.1f})"

    def test_default_vnodes_balance(self):
        """At the default vnode count the worst shard stays within 2×
        of the best — the coarser (but still serviceable) guarantee the
        tier actually runs with."""
        ring = HashRing(range(8), vnodes=64)
        counts = ring.spread([f"node-{i}" for i in range(4000)])
        assert min(counts.values()) > 0
        assert max(counts.values()) <= 2 * min(counts.values()), counts

    def test_every_shard_gets_keys(self):
        ring = HashRing(range(8), vnodes=64)
        counts = ring.spread([(i, "src") for i in range(2000)])
        assert all(count > 0 for count in counts.values())

    def test_spread_reports_idle_shards(self):
        ring = HashRing(range(3))
        counts = ring.spread([])
        assert counts == {0: 0, 1: 0, 2: 0}


class TestMinimalMovement:
    def test_add_shard_only_moves_keys_to_it(self):
        keys = [f"k{i}" for i in range(3000)]
        ring = HashRing(range(4))
        before = {key: ring.shard_for(key) for key in keys}
        ring.add_shard(4)
        moved = 0
        for key in keys:
            after = ring.shard_for(key)
            if after != before[key]:
                # Consistent hashing: a key only ever moves TO the new
                # shard, never between surviving shards.
                assert after == 4, (key, before[key], after)
                moved += 1
        # The new shard takes ≈ 1/5 of the space; allow generous slack.
        assert 0 < moved < len(keys) * 0.4

    def test_remove_shard_only_moves_its_keys(self):
        keys = [f"k{i}" for i in range(3000)]
        ring = HashRing(range(5))
        before = {key: ring.shard_for(key) for key in keys}
        ring.remove_shard(2)
        for key in keys:
            if before[key] != 2:
                assert ring.shard_for(key) == before[key]

    def test_add_then_remove_round_trips(self):
        keys = [f"k{i}" for i in range(500)]
        ring = HashRing(range(3))
        before = {key: ring.shard_for(key) for key in keys}
        ring.add_shard(3)
        ring.remove_shard(3)
        assert {key: ring.shard_for(key) for key in keys} == before


class TestDeterminism:
    def test_stable_hash_is_repr_based(self):
        assert stable_hash64(1) != stable_hash64("1")
        assert stable_hash64("a") == stable_hash64("a")

    def test_placement_identical_across_processes(self):
        """blake2b placement must not depend on PYTHONHASHSEED."""
        keys = [f"node-{i}" for i in range(64)] + list(range(64))
        ring = HashRing(range(4))
        local = [repr(ring.shard_for(key)) for key in keys]
        script = (
            "from repro.cluster.ring import HashRing\n"
            "ring = HashRing(range(4))\n"
            "keys = [f'node-{i}' for i in range(64)] + list(range(64))\n"
            "print(';'.join(repr(ring.shard_for(k)) for k in keys))\n"
        )
        for hashseed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    **os.environ,
                    "PYTHONPATH": _SRC,
                    "PYTHONHASHSEED": hashseed,
                },
            )
            assert out.stdout.strip().split(";") == local
