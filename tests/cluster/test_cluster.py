"""The sharded tier: gossip, failover, shedding, soak, lifecycle.

Tier shapes are kept minimal (1×2, 1×3, 2×2 with one worker each) —
every server is a process pool, and the suite must stay fast on a
single-core CI box.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import (
    ClosedLoopLoadGenerator,
    ClusterSoak,
    FrontendRouter,
    ShardManager,
    all_pairs_workload,
    event_to_patch_ops,
)
from repro.core.routing import LiangShenRouter
from repro.exceptions import (
    NoPathError,
    RemoteRouterError,
    ServiceOverloadError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent
from repro.server.client import RouterClient
from repro.shortestpath.shared import leaked_segments
from repro.topology.reference import paper_figure1_network


@pytest.fixture(scope="module")
def tier():
    """One 2-shard × 2-replica tier shared by the read-only tests."""
    network = paper_figure1_network()
    with ShardManager(network, shards=2, replicas=2, workers=1) as manager:
        yield network, manager


class TestShardManager:
    def test_topology_shape(self, tier):
        _network, manager = tier
        assert manager.num_shards == 2
        assert manager.num_replicas == 2
        assert len(manager.all_servers()) == 4
        assert len(set(manager.segment_names())) == 4  # own segment each
        for shard in (0, 1):
            assert len(manager.replica_addresses(shard)) == 2

    def test_placement_matches_ring(self, tier):
        network, manager = tier
        for node in network.nodes():
            shard = manager.shard_for(node)
            assert shard == manager.ring.shard_for(node)
            assert 0 <= shard < manager.num_shards

    def test_peers_wired_within_shard_only(self, tier):
        _network, manager = tier
        for shard in (0, 1):
            row = manager.servers_of(shard)
            addresses = {server.address for server in row}
            for server in row:
                assert set(server._peers) == addresses - {server.address}

    def test_validation(self):
        network = paper_figure1_network()
        with pytest.raises(ValueError):
            ShardManager(network, shards=0)
        with pytest.raises(ValueError):
            ShardManager(network, replicas=0)


class TestFrontendRouting:
    def test_route_matches_in_process_router(self, tier):
        network, manager = tier
        frontend = FrontendRouter(manager)
        router = LiangShenRouter(network)
        nodes = list(network.nodes())
        for source in nodes[:4]:
            for target in nodes:
                if source == target:
                    continue
                try:
                    remote = frontend.route(source, target)
                except NoPathError:
                    remote = None
                try:
                    local = router.route(source, target).path
                except NoPathError:
                    local = None
                assert remote == local
        frontend.close()

    def test_route_batch_stitches_across_shards(self, tier):
        network, manager = tier
        frontend = FrontendRouter(manager)
        router = LiangShenRouter(network)
        nodes = list(network.nodes())
        pairs = [(s, t) for s in nodes for t in nodes if s != t][:30]
        # The mix must actually span both shards for this to test the
        # reassembly path.
        assert len({manager.shard_for(s) for s, _t in pairs}) == 2
        answers = frontend.route_batch(pairs)
        for (source, target), answer in zip(pairs, answers):
            try:
                expected = router.route(source, target).path
            except NoPathError:
                expected = None
            assert answer == expected
        frontend.close()

    def test_admission_shedding(self, tier):
        _network, manager = tier
        frontend = FrontendRouter(manager, max_inflight=1)
        release = threading.Event()
        entered = threading.Event()
        results: list = []

        # Occupy the single admission slot with a real (slow-ish) call
        # by hammering route_batch in a thread while the main thread
        # races; simplest deterministic variant: grab the semaphore as
        # the frontend would, then prove the next caller is shed.
        assert frontend._inflight_sem.acquire(blocking=False)
        try:
            with pytest.raises(ServiceOverloadError):
                frontend.route(1, 7)
            assert frontend.metrics.snapshot()["frontend.shed"] == 1
        finally:
            frontend._inflight_sem.release()
            release.set()
        # Slot free again: the same call now succeeds.
        assert frontend.route(1, 7) is not None
        assert not entered.is_set() or results  # silence vulture-style lint
        frontend.close()

    def test_unreachable_raises_nopath(self, tier):
        _network, manager = tier
        frontend = FrontendRouter(manager)
        with pytest.raises(NoPathError):
            # Figure 1 has no 7 -> 1 route (directed example network).
            frontend.route(7, 1)
        frontend.close()


class TestGossip:
    """Patch propagation across a 1-shard × 3-replica mesh."""

    def test_patch_at_one_replica_reaches_all(self):
        network = paper_figure1_network()
        injector = FaultInjector(network)
        event = FaultEvent(0.1, "link_fail", tail=1, head=2)
        ops = event_to_patch_ops(network, event)
        with ShardManager(network, shards=1, replicas=3, workers=1) as manager:
            # Send the patch to exactly ONE replica, directly.
            target = manager.servers_of(0)[0]
            client = RouterClient(target.address)
            reply = client.patch(ops)
            assert reply["forwarded"] == 2
            assert reply["failed"] == 0
            assert manager.wait_converged(len(ops), timeout=10.0), (
                manager.delta_epochs()
            )
            # Every replica must now answer byte-identically to a fresh
            # router over the degraded network.
            injector.apply(event)
            oracle = LiangShenRouter(injector.network_view())
            nodes = list(network.nodes())
            for server in manager.servers_of(0):
                probe = RouterClient(server.address)
                for source in nodes[:3]:
                    for target_node in nodes:
                        if source == target_node:
                            continue
                        path, _epoch = probe.route_with_epoch(
                            source, target_node
                        )
                        try:
                            expected = oracle.route(source, target_node).path
                        except NoPathError:
                            expected = None
                        assert path == expected
                probe.close()
            client.close()

    def test_duplicate_envelope_is_idempotent(self):
        network = paper_figure1_network()
        with ShardManager(network, shards=1, replicas=2, workers=1) as manager:
            server = manager.servers_of(0)[0]
            client = RouterClient(server.address)
            ops = [("fail_link", (1, 2))]
            first = client.patch(ops, origin="ext-origin", seq=1)
            assert not first.get("duplicate")
            epoch_after = first["delta_epoch"]
            again = client.patch(ops, origin="ext-origin", seq=1)
            assert again["duplicate"] is True
            assert again["delta_epoch"] == epoch_after
            # The peer got it exactly once too (its own dedup swallowed
            # the re-flood of the duplicate).
            assert manager.wait_converged(1, timeout=10.0)
            client.close()

    def test_gossip_survives_a_dead_replica(self):
        network = paper_figure1_network()
        with ShardManager(network, shards=1, replicas=3, workers=1) as manager:
            victim = manager.servers_of(0)[2]
            victim.close()
            survivor = manager.servers_of(0)[0]
            client = RouterClient(survivor.address)
            reply = client.patch([("fail_link", (1, 2))])
            # One forward lands, one fails; never fatal for the patch.
            assert reply["forwarded"] == 1
            assert reply["failed"] >= 1
            others = manager.servers_of(0)[:2]
            assert all(s._delta.delta_epoch == 1 for s in others)
            client.close()


class TestFailover:
    def test_reads_fail_over_when_a_replica_dies(self):
        network = paper_figure1_network()
        with ShardManager(network, shards=1, replicas=2, workers=1) as manager:
            frontend = FrontendRouter(manager)
            manager.servers_of(0)[0].close()
            # Rotation will hit the dead replica on some calls; every
            # call must still answer via the survivor.
            for _ in range(4):
                assert frontend.route(1, 7) is not None
            assert frontend.metrics.snapshot()["frontend.failovers"] >= 1
            frontend.close()

    def test_all_replicas_down_surfaces_remote_error(self):
        network = paper_figure1_network()
        with ShardManager(network, shards=1, replicas=2, workers=1) as manager:
            frontend = FrontendRouter(manager, breaker_threshold=100)
            for server in manager.servers_of(0):
                server.close()
            with pytest.raises(RemoteRouterError):
                frontend.route(1, 7)
            frontend.close()

    def test_breaker_ejects_after_repeated_failures(self):
        network = paper_figure1_network()
        with ShardManager(network, shards=1, replicas=2, workers=1) as manager:
            frontend = FrontendRouter(
                manager, breaker_threshold=2, breaker_reset=30.0
            )
            manager.servers_of(0)[0].close()
            for _ in range(8):
                frontend.route(1, 7)
            # Once the dead replica's breaker opens, rotation skips it
            # without a connection attempt.
            assert (
                frontend.metrics.snapshot()["frontend.breaker_skips"] >= 1
            )
            frontend.close()


class TestLoadGenerator:
    def test_reaches_query_target(self, tier):
        network, manager = tier
        frontend = FrontendRouter(manager)
        generator = ClosedLoopLoadGenerator(
            frontend,
            all_pairs_workload(network, seed=3),
            concurrency=2,
            batch_size=8,
            total_queries=400,
        )
        report = generator.run()
        assert report.queries >= 400
        assert report.errors == 0
        assert report.throughput > 0
        assert set(report.latency) == {"p50", "p99", "p999", "mean", "max"}
        assert report.latency["p999"] >= report.latency["p50"]
        frontend.close()

    def test_validation(self, tier):
        network, manager = tier
        frontend = FrontendRouter(manager)
        pairs = all_pairs_workload(network)
        with pytest.raises(ValueError):
            ClosedLoopLoadGenerator(frontend, [], total_queries=1)
        with pytest.raises(ValueError):
            ClosedLoopLoadGenerator(frontend, pairs)  # no stop condition
        with pytest.raises(ValueError):
            ClosedLoopLoadGenerator(
                frontend, pairs, concurrency=0, total_queries=1
            )
        frontend.close()


class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        before = set(leaked_segments())
        network = paper_figure1_network()
        manager = ShardManager(network, shards=2, replicas=2, workers=1)
        manager.start()
        segments = manager.segment_names()
        assert len(segments) == 4
        manager.close()
        assert set(leaked_segments()) - before == set()
        manager.close()  # idempotent

    def test_soak_smoke(self):
        """A short storm on the paper network: zero violations."""
        report = ClusterSoak(
            paper_figure1_network(),
            shards=2,
            replicas=2,
            workers=1,
            seconds=2.0,
            num_faults=2,
            seed=1998,
            verify_sample=4,
        ).run()
        assert report.violations == []
        assert report.leaked == []
        assert report.events_applied == 4  # 2 faults + 2 recoveries
        assert report.verified > 0
        assert report.ok
