"""Run the doctest examples embedded in module/class docstrings.

The README and API docs lean on these examples; this test keeps them
honest without enabling ``--doctest-modules`` globally (some modules'
examples depend on wall-clock or RNG and are exercised by regular tests
instead).
"""

import doctest

import pytest

import repro.core.batch
import repro.core.bounded
import repro.core.lightpath
import repro.core.network
import repro.core.routing
import repro.core.wavelengths
import repro.distributed.bellman_ford_dist
import repro.distributed.chandy_misra
import repro.distributed.all_pairs_dist
import repro.distributed.semilightpath_dist
import repro.io.nx
import repro.service.cache
import repro.service.metrics
import repro.service.service
import repro.shortestpath.fibonacci
import repro.shortestpath.heaps
import repro.shortestpath.mincostflow
import repro.shortestpath.structures
import repro.wdm.provisioning
import repro.wdm.simulation
import repro.wdm.state
import repro.wdm.traffic

MODULES = [
    repro.core.batch,
    repro.core.bounded,
    repro.core.lightpath,
    repro.core.network,
    repro.core.routing,
    repro.core.wavelengths,
    repro.distributed.all_pairs_dist,
    repro.distributed.bellman_ford_dist,
    repro.distributed.chandy_misra,
    repro.distributed.semilightpath_dist,
    repro.io.nx,
    repro.service.cache,
    repro.service.metrics,
    repro.service.service,
    repro.shortestpath.fibonacci,
    repro.shortestpath.heaps,
    repro.shortestpath.mincostflow,
    repro.shortestpath.structures,
    repro.wdm.provisioning,
    repro.wdm.simulation,
    repro.wdm.state,
    repro.wdm.traffic,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
