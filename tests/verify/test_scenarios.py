"""Scenario generation and serialization."""

import json

import pytest

from repro.core.conversion import (
    FixedCostConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import WDMNetwork
from repro.verify.scenarios import (
    Scenario,
    ScenarioLimits,
    network_is_chain_free,
    random_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


def _net(k=2, conversion=None):
    net = WDMNetwork(num_wavelengths=k, default_conversion=conversion)
    net.add_node(0)
    net.add_node(1)
    net.add_link(0, 1, {0: 1.0})
    return net


class TestScenario:
    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError, match="must differ"):
            Scenario(network=_net(), queries=((0, 0),))

    def test_rejects_off_network_queries(self):
        with pytest.raises(ValueError, match="off the network"):
            Scenario(network=_net(), queries=((0, 99),))

    def test_repr_mentions_sizes(self):
        scenario = Scenario(network=_net(), queries=((0, 1),), seed=3)
        assert "n=2" in repr(scenario) and "seed=3" in repr(scenario)

    def test_with_queries_and_with_network(self):
        scenario = Scenario(network=_net(), queries=((0, 1),))
        assert scenario.with_queries(()).queries == ()
        bigger = _net(k=3)
        assert scenario.with_network(bigger).network is bigger


class TestChainFree:
    @pytest.mark.parametrize(
        "model,expected",
        [
            (NoConversion(), True),
            (FixedCostConversion(0.5), True),
            (RangeLimitedConversion(1), False),
            (MatrixConversion({(0, 1): 1.0}), False),
        ],
    )
    def test_default_model(self, model, expected):
        assert network_is_chain_free(_net(conversion=model)) is expected

    def test_explicit_node_model_can_break_chain_freedom(self):
        net = _net(conversion=FixedCostConversion(0.5))
        net.set_conversion(1, RangeLimitedConversion(1))
        assert not network_is_chain_free(net)
        assert not Scenario(network=net, queries=((0, 1),)).chain_free


class TestRandomScenario:
    def test_deterministic_per_seed(self):
        a, b = random_scenario(123), random_scenario(123)
        assert scenario_to_dict(a) == scenario_to_dict(b)
        assert scenario_to_dict(a) != scenario_to_dict(random_scenario(124))

    def test_respects_limits(self):
        limits = ScenarioLimits(min_nodes=3, max_nodes=5, max_wavelengths=2, max_queries=3)
        for seed in range(30):
            scenario = random_scenario(seed, limits=limits)
            assert 2 <= scenario.network.num_nodes <= 5
            assert scenario.network.num_wavelengths <= 2
            assert 1 <= len(scenario.queries) <= 3

    def test_sweeps_all_axes(self):
        descriptions = " ".join(
            random_scenario(seed).description for seed in range(120)
        )
        for family in ("line", "ring", "degree-bounded", "sparse", "complete"):
            assert family in descriptions
        for kind in ("full", "none", "zero", "range", "matrix"):
            assert f"conversion={kind}" in descriptions
        for kind in ("all", "random", "bounded"):
            assert f"availability={kind}" in descriptions

    def test_limits_validation(self):
        with pytest.raises(ValueError):
            ScenarioLimits(min_nodes=1)
        with pytest.raises(ValueError):
            ScenarioLimits(min_nodes=5, max_nodes=4)
        with pytest.raises(ValueError):
            ScenarioLimits(max_queries=0)


class TestSerialization:
    def test_round_trip(self):
        scenario = random_scenario(7)
        document = scenario_to_dict(scenario)
        json.dumps(document)  # must be pure JSON
        back = scenario_from_dict(document)
        assert scenario_to_dict(back) == document
        assert back.queries == scenario.queries
        assert back.seed == scenario.seed

    def test_unknown_format_rejected(self):
        document = scenario_to_dict(random_scenario(7))
        document["format"] = 999
        with pytest.raises(ValueError, match="unsupported scenario format"):
            scenario_from_dict(document)
