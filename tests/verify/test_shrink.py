"""The delta-debugging shrinker, including the end-to-end acceptance fixture:

an intentionally injected cost perturbation must be caught by the harness,
shrunk to a counterexample of at most 6 nodes, and written to the corpus.
"""

import json

import pytest

from repro.verify.corpus import load_case, save_case
from repro.verify.harness import DifferentialHarness
from repro.verify.oracles import default_oracles
from repro.verify.scenarios import random_scenario
from repro.verify.shrink import shrink_scenario
from tests.verify.test_harness import FAST_ORACLES, perturbing_oracle


def failing_harness():
    """A harness whose matrix contains one oracle with a +0.125 cost bug."""
    return DifferentialHarness(list(FAST_ORACLES) + [perturbing_oracle()])


class TestShrink:
    def test_refuses_to_shrink_a_passing_scenario(self):
        harness = DifferentialHarness(FAST_ORACLES)
        with pytest.raises(ValueError, match="does not fail"):
            shrink_scenario(random_scenario(0), lambda s: not harness.run(s).ok)

    def test_result_still_fails_and_is_smaller(self):
        harness = failing_harness()
        fails = lambda s: not harness.run(s).ok  # noqa: E731
        scenario = random_scenario(7)
        shrunk = shrink_scenario(scenario, fails)
        assert fails(shrunk)
        assert shrunk.network.num_nodes <= scenario.network.num_nodes
        assert len(shrunk.queries) == 1
        assert shrunk.description.endswith("(shrunk)")

    def test_one_minimality_of_links(self):
        # Dropping any single remaining link must make the failure vanish
        # (here: disconnect the only query, so the perturbed oracle and the
        # matrix agree on unreachability).
        harness = failing_harness()
        fails = lambda s: not harness.run(s).ok  # noqa: E731
        shrunk = shrink_scenario(random_scenario(7), fails)
        assert shrunk.network.num_links >= 1
        from repro.verify.shrink import _candidate, _rebuild

        for link in shrunk.network.links():
            def drop(tail, head, costs, _link=link):
                return None if (tail, head) == (_link.tail, _link.head) else costs

            candidate = _candidate(shrunk, _rebuild(shrunk.network, link_costs=drop))
            assert not (candidate.queries and fails(candidate)), (
                f"link {link.tail}->{link.head} is redundant in the shrunk scenario"
            )

    def test_multi_query_interaction_drops_queries_one_at_a_time(self):
        # When no single query reproduces the failure, the shrinker must
        # fall back to dropping queries individually.  A synthetic
        # predicate that needs two specific queries present stands in for
        # a stateful cross-query bug.
        scenario = random_scenario(7)
        assert len(scenario.queries) >= 3
        needed = set(scenario.queries[:2])

        def fails(candidate):
            return needed <= set(candidate.queries)

        shrunk = shrink_scenario(scenario, fails)
        assert set(shrunk.queries) == needed

    def test_acceptance_perturbation_caught_shrunk_and_persisted(self, tmp_path):
        harness = failing_harness()

        # Caught: the fuzzer itself trips over the injected bug.
        result = harness.fuzz(seconds=10, seed=1998, max_failures=1)
        assert not result.ok
        failing_report = result.failures[0]

        # Shrunk: to a minimal counterexample of at most 6 nodes.
        fails = lambda s: not harness.run(s).ok  # noqa: E731
        shrunk = shrink_scenario(failing_report.scenario, fails)
        assert shrunk.network.num_nodes <= 6
        final_report = harness.run(shrunk)
        assert not final_report.ok

        # Written to the corpus, and replayable from it.
        path = save_case(
            tmp_path, shrunk, [d.detail for d in final_report.disagreements]
        )
        assert path.is_file()
        case = load_case(path)
        assert case.disagreements
        assert not harness.run(case.scenario).ok
        # The fixed oracle matrix passes the same corpus case.
        assert DifferentialHarness(FAST_ORACLES).run(case.scenario).ok

    def test_wavelength_universe_is_cut_to_used_entries(self, tmp_path):
        harness = failing_harness()
        fails = lambda s: not harness.run(s).ok  # noqa: E731
        shrunk = shrink_scenario(random_scenario(11), fails)
        used = {w for link in shrunk.network.links() for w in link.costs}
        assert shrunk.network.num_wavelengths == max(used) + 1
        # The persisted document is small enough to eyeball in review.
        path = save_case(tmp_path, shrunk)
        assert len(json.loads(path.read_text())["network"]["links"]) <= 6
