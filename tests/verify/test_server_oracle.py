"""The ``liang:server`` oracle: live-server membership in the matrix.

The heavy end-to-end behaviour (byte-identity, crash recovery, protocol
abuse) lives in ``tests/server``; this module pins the *verify-layer*
contract: the oracle slots into :class:`DifferentialHarness` cleanly,
each scenario gets a fresh server driven through net-zero wire PATCH
churn, the manager's lifecycle is idempotent, and no shared-memory
segment outlives a run.
"""

import pytest

from repro.core.routing import LiangShenRouter
from repro.shortestpath.shared import leaked_segments
from repro.verify.harness import DifferentialHarness
from repro.verify.oracles import (
    Oracle,
    ServerOracleManager,
    default_oracles,
    server_oracle,
)
from repro.verify.scenarios import random_scenario

FAST = default_oracles(parallel_workers=0)


@pytest.fixture
def manager():
    mgr = ServerOracleManager(workers=1)
    yield mgr
    mgr.close()


def test_server_oracle_shape(manager):
    oracle = server_oracle(manager)
    assert isinstance(oracle, Oracle)
    assert oracle.name == "liang:server"
    assert oracle.exact_hops
    # Applies everywhere — no gating predicate like cfz/brute-force.
    assert oracle.applies(random_scenario(0))


def test_not_part_of_the_default_matrix():
    names = [oracle.name for oracle in default_oracles()]
    assert "liang:server" not in names


def test_harness_run_with_live_server_agrees(manager):
    before = set(leaked_segments())
    harness = DifferentialHarness([FAST[0], server_oracle(manager)])
    for seed in (0, 1):
        report = harness.run(random_scenario(seed))
        assert report.ok, report.format()
        assert "liang:server" in report.oracle_names
    assert manager.scenarios == 2
    manager.close()
    assert set(leaked_segments()) - before == set()


def test_prepare_routes_match_local_router_after_churn():
    mgr = ServerOracleManager(workers=1, churn=True)
    try:
        scenario = random_scenario(5)
        route = mgr.prepare(scenario.network)
        local = LiangShenRouter(scenario.network, heap="flat")
        for source, target in scenario.queries[:6]:
            got = route(source, target)
            try:
                expected = local.route(source, target).path
            except Exception:
                expected = None
            assert got == expected, (source, target)
    finally:
        mgr.close()


def test_prepare_without_churn_skips_patches():
    mgr = ServerOracleManager(workers=1, churn=False)
    try:
        scenario = random_scenario(2)
        route = mgr.prepare(scenario.network)
        assert mgr.scenarios == 1
        source, target = scenario.queries[0]
        local = LiangShenRouter(scenario.network, heap="flat")
        try:
            expected = local.route(source, target).path
        except Exception:
            expected = None
        assert route(source, target) == expected
    finally:
        mgr.close()


def test_prepare_replaces_previous_server(manager):
    first = random_scenario(0).network
    second = random_scenario(1).network
    manager.prepare(first)
    first_segment = manager._server.segment_name
    manager.prepare(second)
    assert manager.scenarios == 2
    # The first scenario's server is gone, segment unlinked.
    assert first_segment not in leaked_segments()


def test_close_is_idempotent(manager):
    manager.prepare(random_scenario(0).network)
    segment = manager._server.segment_name
    manager.close()
    manager.close()
    assert segment not in leaked_segments()
    assert manager._server is None and manager._client is None
