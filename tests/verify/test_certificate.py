"""The independent Eq. (1) certificate checker."""

import math

import pytest

from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Hop, Semilightpath
from repro.verify.certificate import check_certificate, costs_close


@pytest.fixture
def net():
    """a -> b -> c with a forced conversion at b (cost 0.5)."""
    net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.5))
    for node in "abc":
        net.add_node(node)
    net.add_link("a", "b", {0: 1.0})
    net.add_link("b", "c", {1: 2.0})
    return net


def path(hops, cost):
    return Semilightpath(hops=tuple(hops), total_cost=cost)


class TestValidCertificates:
    def test_exact_cost_passes(self, net):
        cert = check_certificate(
            net,
            path([Hop("a", "b", 0), Hop("b", "c", 1)], 3.5),
            source="a",
            target="c",
        )
        assert cert.ok and bool(cert)
        assert cert.recomputed_cost == 3.5
        assert cert.violations == ()

    def test_router_output_always_certifies(self, net):
        result = LiangShenRouter(net).route("a", "c")
        assert check_certificate(net, result.path, "a", "c").ok

    def test_endpoints_optional(self, net):
        assert check_certificate(net, path([Hop("a", "b", 0)], 1.0)).ok


class TestViolations:
    def test_wrong_claimed_cost(self, net):
        cert = check_certificate(net, path([Hop("a", "b", 0)], 1.25))
        assert not cert.ok
        assert "claimed cost" in cert.violations[0]
        assert cert.recomputed_cost == 1.0

    def test_nan_claimed_cost(self, net):
        cert = check_certificate(net, path([Hop("a", "b", 0)], math.nan))
        assert not cert.ok
        assert "NaN" in cert.violations[0]

    def test_endpoint_mismatch(self, net):
        cert = check_certificate(net, path([Hop("a", "b", 0)], 1.0), "b", "a")
        assert not cert.ok
        assert len(cert.violations) == 2  # wrong start and wrong end

    def test_missing_link(self, net):
        cert = check_certificate(net, path([Hop("c", "a", 0)], 1.0))
        assert not cert.ok
        assert "no link" in cert.violations[0]

    def test_wavelength_not_available(self, net):
        cert = check_certificate(net, path([Hop("a", "b", 1)], 1.0))
        assert not cert.ok
        assert "not in Λ(e)" in cert.violations[0]

    def test_unsupported_conversion(self, net):
        net.set_conversion("b", NoConversion())
        cert = check_certificate(
            net, path([Hop("a", "b", 0), Hop("b", "c", 1)], 3.0)
        )
        assert not cert.ok
        assert "cannot convert" in cert.violations[0]

    def test_broken_hop_chain_reported(self, net):
        # Build hops that do not chain by bypassing Semilightpath validation.
        broken = Semilightpath.__new__(Semilightpath)
        object.__setattr__(
            broken, "hops", (Hop("a", "b", 0), Hop("c", "b", 0))
        )
        object.__setattr__(broken, "total_cost", 2.0)
        cert = check_certificate(net, broken)
        assert not cert.ok
        assert any("hop 0 ends at" in v for v in cert.violations)
        assert any("no link" in v for v in cert.violations)

    def test_cost_not_checked_when_infeasible(self, net):
        # A feasibility violation makes the recomputed total meaningless;
        # the cost line must not be reported on top of it.
        cert = check_certificate(net, path([Hop("a", "b", 1)], 123.0))
        assert all("claimed cost" not in v for v in cert.violations)


class TestCostsClose:
    def test_tolerates_ulp_noise(self):
        assert costs_close(0.1 + 0.2, 0.3)

    def test_rejects_real_differences(self):
        assert not costs_close(1.0, 1.0 + 1e-6)
