"""The differential harness: oracle matrix agreement and fault detection.

The positive tests pin "the matrix agrees on generated scenarios"; the
negative tests inject faulty oracles and check each disagreement kind is
caught — the harness is itself code under test, and an oracle that can
never fire is worse than none.
"""

import pytest
from hypothesis import given, settings

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import NoPathError
from repro.verify.harness import DifferentialHarness
from repro.verify.oracles import Oracle, default_oracles
from repro.verify.scenarios import Scenario, ScenarioLimits, random_scenario
from tests.strategies import networks_with_endpoints

FAST_ORACLES = default_oracles(parallel_workers=0)


def perturbing_oracle(delta=0.125, name="injected:perturbed", exact_hops=False):
    """An oracle that reports every cost *delta* too high."""

    def prepare(network):
        router = LiangShenRouter(network)

        def route(source, target):
            try:
                path = router.route(source, target).path
            except NoPathError:
                return None
            return Semilightpath(hops=path.hops, total_cost=path.total_cost + delta)

        return route

    return Oracle(name=name, prepare=prepare, exact_hops=exact_hops)


class TestMatrixAgreement:
    def test_seeded_scenarios_are_clean(self):
        harness = DifferentialHarness(FAST_ORACLES)
        for seed in range(15):
            report = harness.run(random_scenario(seed))
            assert report.ok, report.format()
            assert report.queries_checked == len(report.scenario.queries)

    def test_full_matrix_including_parallel_pool(self):
        harness = DifferentialHarness()  # includes liang:all-pairs:parallel
        report = harness.run(random_scenario(3))
        assert "liang:all-pairs:parallel" in report.oracle_names
        assert report.ok, report.format()

    @given(case=networks_with_endpoints())
    @settings(max_examples=25, deadline=None)
    def test_matrix_agrees_on_hypothesis_networks(self, case):
        net, source, target = case
        scenario = Scenario(
            network=net, queries=((source, target),), description="hypothesis"
        )
        report = DifferentialHarness(FAST_ORACLES).run(scenario)
        assert report.ok, report.format()

    def test_report_format_mentions_outcome(self):
        harness = DifferentialHarness(FAST_ORACLES)
        report = harness.run(random_scenario(0))
        assert "no disagreements" in report.format()


class TestFaultDetection:
    def scenario(self):
        return random_scenario(7)  # every query pair is reachable

    def test_cost_perturbation_caught(self):
        harness = DifferentialHarness(list(FAST_ORACLES) + [perturbing_oracle()])
        report = harness.run(self.scenario())
        kinds = {d.kind for d in report.disagreements}
        # A perturbed claim disagrees with the matrix *and* fails its own
        # Eq. (1) certificate.
        assert "cost" in kinds and "certificate" in kinds
        assert any(
            "injected:perturbed" in d.oracles for d in report.disagreements
        )

    def test_reachability_split_caught(self):
        blind = Oracle(name="injected:blind", prepare=lambda net: lambda s, t: None)
        harness = DifferentialHarness(list(FAST_ORACLES) + [blind])
        report = harness.run(self.scenario())
        splits = [d for d in report.disagreements if d.kind == "reachability"]
        assert splits and all("injected:blind" in d.detail for d in splits)

    def test_hop_divergence_caught_for_exact_oracles(self):
        # Two equal-cost two-hop routes a->b->d and a->c->d; the pinned
        # tie-break picks one, the injected exact-hops oracle the other.
        net = WDMNetwork(num_wavelengths=1, default_conversion=FixedCostConversion(0.0))
        for node in range(4):  # 0=a, 1=b, 2=c, 3=d
            net.add_node(node)
        for tail, head in [(0, 1), (1, 3), (0, 2), (2, 3)]:
            net.add_link(tail, head, {0: 1.0})
        other = Semilightpath(
            hops=(Hop(0, 2, 0), Hop(2, 3, 0)), total_cost=2.0
        )

        def prepare(network):
            return lambda s, t: other if (s, t) == (0, 3) else None

        rogue = Oracle(name="injected:other-path", prepare=prepare, exact_hops=True)
        scenario = Scenario(network=net, queries=((0, 3),))
        report = DifferentialHarness(list(FAST_ORACLES) + [rogue]).run(scenario)
        kinds = {d.kind for d in report.disagreements}
        assert "hops" in kinds
        assert "cost" not in kinds and "certificate" not in kinds

    def test_route_crash_is_a_finding_not_an_abort(self):
        def prepare(network):
            def route(s, t):
                raise RuntimeError("backend exploded")

            return route

        harness = DifferentialHarness(
            list(FAST_ORACLES) + [Oracle(name="injected:crash", prepare=prepare)]
        )
        report = harness.run(self.scenario())
        errors = [d for d in report.disagreements if d.kind == "error"]
        assert errors and "backend exploded" in errors[0].detail
        assert report.queries_checked == len(report.scenario.queries)

    def test_prepare_crash_is_a_finding(self):
        def prepare(network):
            raise RuntimeError("no overlay for you")

        harness = DifferentialHarness(
            list(FAST_ORACLES) + [Oracle(name="injected:noprep", prepare=prepare)]
        )
        report = harness.run(self.scenario())
        assert any(
            d.kind == "error" and "prepare raised" in d.detail
            for d in report.disagreements
        )

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError, match="at least one oracle"):
            DifferentialHarness(())


class TestApplicability:
    def test_cfz_sits_out_non_chain_free_scenarios(self):
        for seed in range(200):
            scenario = random_scenario(seed)
            if not scenario.chain_free:
                break
        else:
            pytest.fail("no non-chain-free scenario in 200 seeds")
        report = DifferentialHarness(FAST_ORACLES).run(scenario)
        assert not any(name.startswith("cfz:") for name in report.oracle_names)
        assert any(name.startswith("liang:") for name in report.oracle_names)

    def test_slow_oracles_sit_out_large_state_spaces(self):
        net = WDMNetwork(num_wavelengths=33)
        for node in range(4):
            net.add_node(node)
        net.add_link(0, 1, {0: 1.0})
        scenario = Scenario(network=net, queries=((0, 1),))
        names = [o.name for o in FAST_ORACLES if o.applies(scenario)]
        assert "brute-force" not in names
        assert "distributed:bellman-ford" not in names


class TestFuzz:
    def test_budget_validation(self):
        with pytest.raises(ValueError, match="seconds"):
            DifferentialHarness(FAST_ORACLES).fuzz(seconds=0)

    def test_short_budget_runs_at_least_one_scenario(self):
        result = DifferentialHarness(FAST_ORACLES).fuzz(seconds=0.001, seed=5)
        assert result.scenarios_run >= 1
        assert result.queries_checked >= 1
        assert result.ok and result.seed == 5

    def test_stops_early_at_max_failures(self):
        always_wrong = perturbing_oracle()
        harness = DifferentialHarness(list(FAST_ORACLES) + [always_wrong])
        limits = ScenarioLimits(max_nodes=5)
        result = harness.fuzz(seconds=30, seed=0, limits=limits, max_failures=2)
        assert len(result.failures) == 2
        assert result.elapsed < 30

    def test_on_scenario_callback_sees_every_report(self):
        seen = []
        DifferentialHarness(FAST_ORACLES).fuzz(
            seconds=0.001, seed=1, on_scenario=seen.append
        )
        assert len(seen) >= 1 and all(r.ok for r in seen)
