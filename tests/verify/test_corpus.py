"""Corpus persistence and the golden-corpus regression replay."""

from pathlib import Path

from repro.verify.corpus import (
    case_filename,
    iter_corpus,
    load_case,
    replay_corpus,
    save_case,
)
from repro.verify.harness import DifferentialHarness
from repro.verify.scenarios import random_scenario, scenario_to_dict
from tests.verify.test_harness import FAST_ORACLES

GOLDEN_CORPUS = Path(__file__).parent / "corpus"


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        scenario = random_scenario(42)
        path = save_case(tmp_path, scenario, ["cost: min=1.0 max=1.5"])
        case = load_case(path)
        assert scenario_to_dict(case.scenario) == scenario_to_dict(scenario)
        assert case.disagreements == ("cost: min=1.0 max=1.5",)
        assert case.path == path and case.name == path.name

    def test_content_addressing_is_idempotent(self, tmp_path):
        scenario = random_scenario(42)
        first = save_case(tmp_path, scenario)
        second = save_case(tmp_path, scenario, ["later capture"])
        assert first == second
        assert len(list(tmp_path.iterdir())) == 1
        assert first.name == case_filename(scenario)

    def test_distinct_scenarios_get_distinct_files(self, tmp_path):
        save_case(tmp_path, random_scenario(1))
        save_case(tmp_path, random_scenario(2))
        assert len(iter_corpus(tmp_path)) == 2

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        assert iter_corpus(tmp_path / "nope") == []
        assert replay_corpus(
            tmp_path / "nope", DifferentialHarness(FAST_ORACLES)
        ) == []

    def test_save_creates_directory(self, tmp_path):
        path = save_case(tmp_path / "deep" / "corpus", random_scenario(3))
        assert path.is_file()


class TestGoldenCorpus:
    def test_corpus_is_not_empty(self):
        assert len(iter_corpus(GOLDEN_CORPUS)) >= 5

    def test_filenames_match_content(self):
        for case in iter_corpus(GOLDEN_CORPUS):
            assert case.name == case_filename(case.scenario), case.name

    def test_replay_is_clean_on_current_code(self):
        results = replay_corpus(GOLDEN_CORPUS, DifferentialHarness(FAST_ORACLES))
        assert results
        for case, report in results:
            assert report.ok, f"{case.name}: {report.format()}"
