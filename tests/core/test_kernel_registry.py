"""The kernel registry: one name -> kernel table for every dispatch site."""

import pytest

from repro.core.routing import LiangShenRouter
from repro.shortestpath import (
    kernel_names,
    register_kernel,
    resolve_kernel,
)
from repro.shortestpath.bucket import bucket_dijkstra
from repro.shortestpath.flat import flat_dijkstra
from repro.shortestpath.heaps import BinaryHeap
from repro.topology.reference import paper_figure1_network


class TestRegistry:
    def test_builtin_names(self):
        assert set(kernel_names()) >= {
            "flat",
            "bucket",
            "binary",
            "pairing",
            "fibonacci",
        }

    def test_flat_resolves_to_flat_kernel(self):
        assert resolve_kernel("flat") is flat_dijkstra

    def test_bucket_resolves_to_bucket_kernel(self):
        assert resolve_kernel("bucket") is bucket_dijkstra

    def test_unknown_name_raises_with_inventory(self):
        with pytest.raises(ValueError, match="unknown kernel 'nope'"):
            resolve_kernel("nope")
        with pytest.raises(ValueError, match="flat"):
            resolve_kernel("nope")

    def test_callable_factory_wrapped(self):
        kernel = resolve_kernel(BinaryHeap)
        net = paper_figure1_network()
        router = LiangShenRouter(net)
        aux = router.layered_graph()
        run = kernel(aux.graph, 0, scratch=None)
        assert run.settled > 0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("flat", flat_dijkstra)

    def test_custom_registration_reaches_router(self):
        calls = []

        def spy(graph, sources, target=None, targets=None, scratch=None):
            calls.append(1)
            return flat_dijkstra(
                graph, sources, target=target, targets=targets, scratch=scratch
            )

        name = "test-spy-kernel"
        try:
            register_kernel(name, spy)
            router = LiangShenRouter(paper_figure1_network(), heap=name)
            router.route(1, 7)
            assert calls
        finally:
            from repro.shortestpath import _KERNELS

            _KERNELS.pop(name, None)


class TestRouterDispatch:
    def test_unknown_heap_fails_eagerly_at_construction(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            LiangShenRouter(paper_figure1_network(), heap="bogus")

    @pytest.mark.parametrize("heap", ["flat", "bucket", "binary"])
    def test_all_registered_kernels_route_identically(self, heap):
        net = paper_figure1_network()
        reference = LiangShenRouter(net, heap="flat").route(1, 7)
        result = LiangShenRouter(net, heap=heap).route(1, 7)
        assert result.path.hops == reference.path.hops
        assert result.cost == reference.cost
