"""Reference-topology identity: the hot path changes *speed*, not answers.

The seed router answered single-pair queries by rebuilding ``G_{s,t}``
per query over an addressable binary heap.  The overhauled default
answers them on the shared ``G'`` overlay with the flat kernel.  On
every reference topology the two must agree **exactly** — same float
cost bit-for-bit and, because all kernels share the ascending-id
tie-break, the same hop sequence — and the parallel all-pairs fan-out
must reproduce the serial result verbatim.
"""

import pytest

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.topology.generators import grid_network, ring_network, waxman_network
from repro.topology.reference import (
    arpanet_network,
    nsfnet_network,
    paper_figure1_network,
)

TOPOLOGIES = {
    "paper_fig1": lambda: paper_figure1_network(),
    "nsfnet": lambda: nsfnet_network(num_wavelengths=4, seed=1),
    "arpanet": lambda: arpanet_network(num_wavelengths=4, seed=2),
    "ring16": lambda: ring_network(16, 4, seed=3),
    "grid4x4": lambda: grid_network(4, 4, 3, seed=4),
    "waxman20": lambda: waxman_network(20, 4, seed=5),
}


def try_route(router, s, t):
    try:
        return router.route(s, t)
    except NoPathError:
        return None


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_default_path_identical_to_seed_configuration(name):
    """Overlay + flat vs per-query rebuild + binary heap: exact agreement."""
    net = TOPOLOGIES[name]()
    seed_router = LiangShenRouter(net, heap="binary", overlay=False)
    hot_router = LiangShenRouter(net)
    for s in net.nodes():
        for t in net.nodes():
            if s == t:
                continue
            seed = try_route(seed_router, s, t)
            hot = try_route(hot_router, s, t)
            if seed is None:
                assert hot is None, (name, s, t)
            else:
                assert hot is not None, (name, s, t)
                # Exact float equality, not approx: both paths sum the
                # same edge weights in the same order.
                assert hot.cost == seed.cost, (name, s, t)
                assert hot.path.hops == seed.path.hops, (name, s, t)


@pytest.mark.parametrize("name", ["paper_fig1", "nsfnet", "ring16"])
def test_all_pairs_serial_parallel_and_single_agree(name):
    net = TOPOLOGIES[name]()
    router = LiangShenRouter(net)
    serial = router.route_all_pairs()
    fanned = router.route_all_pairs(workers=2)
    assert {p: (v.hops, v.total_cost) for p, v in serial.paths.items()} == {
        p: (v.hops, v.total_cost) for p, v in fanned.paths.items()
    }
    assert serial.stats.settled == fanned.stats.settled
    assert serial.stats.relaxations == fanned.stats.relaxations
    for (s, t), path in serial.paths.items():
        single = try_route(router, s, t)
        assert single is not None
        assert single.path.hops == path.hops
        assert single.cost == path.total_cost


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_routed_paths_validate_on_their_network(name):
    net = TOPOLOGIES[name]()
    router = LiangShenRouter(net)
    for (_s, _t), path in router.route_all_pairs().paths.items():
        path.validate(net)
