"""Reproduction of the paper's worked example (Figures 1-4, Section III-A).

These tests pin the example exactly as printed:

* FIG1 — the network ``G`` of Fig. 1 with the per-link ``Λ(e)`` table,
* FIG2 — the derived ``Λ_in(G_M, v)`` / ``Λ_out(G_M, v)`` sets listed under
  Fig. 2 (with one documented typo in the paper, see below),
* FIG3 — node 3's bipartite graph ``G_3``, including the *absence* of the
  ``λ₂ → λ₃`` conversion edge visible in Fig. 3,
* FIG4 — the ``E_org`` edges between the ``G_3`` and ``G_1`` fragments of
  ``G'`` (two parallel links derived from ``⟨3,1⟩`` on ``λ₂`` and ``λ₃``).

**Known typo (documented, not reproduced):** the paper lists
``Λ_out(G_M, 2) = {λ1, λ2, λ4}``, but its own availability table gives
``Λ(⟨2,3⟩) = {λ1, λ4}`` and ``Λ(⟨2,7⟩) = {λ1, λ2, λ3}``, whose union is
``{λ1, λ2, λ3, λ4}``.  We treat the ``Λ(e)`` table as ground truth; the
union rule (the definition of ``Λ_out``) then fixes the derived set.
"""

import pytest

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    build_layered_graph,
    build_routing_graph,
    multigraph_edges,
)
from repro.core.routing import LiangShenRouter
from repro.topology.reference import PAPER_LAMBDA_TABLE, paper_figure1_network

# The Λ_in / Λ_out listing printed under Fig. 2 (0-based indices), with the
# Λ_out(2) entry corrected per the union rule (see module docstring).
PAPER_LAMBDA_IN = {
    1: {1, 2},
    2: {0, 2},
    3: {0, 1, 3},
    4: {0, 1, 2, 3},
    5: {2},
    6: {0, 2},
    7: {0, 1, 2, 3},
}
PAPER_LAMBDA_OUT = {
    1: {0, 1, 2, 3},
    2: {0, 1, 2, 3},  # paper prints {λ1, λ2, λ4}; union rule gives all four
    3: {1, 2, 3},
    4: {2},
    5: {0, 1, 2, 3},
    6: {1, 2, 3},
    7: set(),
}


class TestFig1Network:
    def test_shape(self, paper_net):
        assert paper_net.num_nodes == 7
        assert paper_net.num_links == 11
        assert paper_net.num_wavelengths == 4

    def test_lambda_table_exact(self, paper_net):
        for (tail, head), expected in PAPER_LAMBDA_TABLE.items():
            assert paper_net.available_wavelengths(tail, head) == expected

    def test_no_extra_links(self, paper_net):
        actual = {(link.tail, link.head) for link in paper_net.links()}
        assert actual == set(PAPER_LAMBDA_TABLE)

    def test_degree_parameters(self, paper_net):
        assert paper_net.max_degree == 3  # node 7's in-degree
        assert paper_net.max_link_wavelengths == 3  # k0: |Λ(⟨1,4⟩)| etc.

    def test_restriction2_holds_at_defaults(self, paper_net):
        from repro.core.restrictions import check_restriction2

        holds, _, _ = check_restriction2(paper_net)
        assert holds


class TestFig2Multigraph:
    def test_m1_total_parallel_links(self, paper_net):
        # Σ_e |Λ(e)| = 24 parallel links in G_M.
        assert paper_net.total_link_wavelengths == 24
        assert len(list(multigraph_edges(paper_net))) == 24

    @pytest.mark.parametrize("node", range(1, 8))
    def test_lambda_in_matches_paper(self, paper_net, node):
        assert set(paper_net.lambda_in(node)) == PAPER_LAMBDA_IN[node]

    @pytest.mark.parametrize("node", range(1, 8))
    def test_lambda_out_matches_paper(self, paper_net, node):
        assert set(paper_net.lambda_out(node)) == PAPER_LAMBDA_OUT[node]

    def test_documented_typo_lambda_out_2(self, paper_net):
        """The union rule contradicts the printed Λ_out(G_M, 2)."""
        printed = {0, 1, 3}  # {λ1, λ2, λ4} as the paper lists it
        union = set(paper_net.lambda_out(2))
        assert union != printed
        assert union == printed | {2}


class TestFig3BipartiteG3:
    def test_node_sets(self, paper_net):
        lay = build_layered_graph(paper_net)
        xs, ys = lay.bipartite_nodes(3)
        assert [lay.decode[x].wavelength for x in xs] == [0, 1, 3]
        assert [lay.decode[y].wavelength for y in ys] == [1, 2, 3]

    def test_forbidden_conversion_edge_absent(self, paper_net):
        """Fig. 3 shows no edge (3,λ2) -> (3,λ3)."""
        lay = build_layered_graph(paper_net)
        edges_at_3 = {
            (lay.decode[t].wavelength, lay.decode[h].wavelength)
            for t, h, _w, _tag in lay.graph.edges()
            if lay.decode[t].kind == KIND_IN
            and lay.decode[t].node == 3
            and lay.decode[h].kind == KIND_OUT
        }
        assert (1, 2) not in edges_at_3  # λ2 -> λ3 forbidden
        # All other in/out pairs exist (pass-through or full conversion).
        expected = {
            (p, q)
            for p in [0, 1, 3]
            for q in [1, 2, 3]
            if (p, q) != (1, 2)
        }
        assert edges_at_3 == expected

    def test_pass_through_edges_free(self, paper_net):
        lay = build_layered_graph(paper_net)
        for t, h, w, _tag in lay.graph.edges():
            a, b = lay.decode[t], lay.decode[h]
            if (
                a.kind == KIND_IN
                and b.kind == KIND_OUT
                and a.node == b.node == 3
                and a.wavelength == b.wavelength
            ):
                assert w == 0.0


class TestFig4SubgraphG1G3:
    def test_parallel_e_org_links_3_to_1(self, paper_net):
        """Fig. 4: two parallel E_org links from G_3 to G_1 (λ2, λ3)."""
        lay = build_layered_graph(paper_net)
        org_3_to_1 = [
            (lay.decode[t].wavelength, w)
            for t, h, w, _tag in lay.graph.edges()
            if lay.decode[t].kind == KIND_OUT
            and lay.decode[t].node == 3
            and lay.decode[h].kind == KIND_IN
            and lay.decode[h].node == 1
        ]
        assert sorted(lam for lam, _w in org_3_to_1) == [1, 2]  # λ2, λ3

    def test_no_reverse_e_org_1_to_3(self, paper_net):
        """G has no link 1->3, so G' has no E_org edge from G_1 to G_3."""
        lay = build_layered_graph(paper_net)
        assert not [
            1
            for t, h, _w, _tag in lay.graph.edges()
            if lay.decode[t].kind == KIND_OUT
            and lay.decode[t].node == 1
            and lay.decode[h].kind == KIND_IN
            and lay.decode[h].node == 3
        ]


class TestRoutingOnTheExample:
    def test_route_1_to_7(self, paper_net):
        result = LiangShenRouter(paper_net).route(1, 7)
        # Cheapest: 1 -[λ1]-> 2 -[λ1]-> 7, two unit links, no conversion.
        assert result.cost == pytest.approx(2.0)
        assert result.path.is_lightpath
        assert result.path.nodes() == [1, 2, 7]

    def test_route_1_to_6_needs_conversion(self, paper_net):
        result = LiangShenRouter(paper_net).route(1, 6)
        # Only route: 1->4->5->6; Λ(4,5)={λ3} forces at least one switch.
        assert result.path.nodes() == [1, 4, 5, 6]
        assert result.path.num_conversions >= 1
        assert result.cost == pytest.approx(3.5)  # 3 links + 1 conversion

    def test_node7_is_sink_only(self, paper_net):
        from repro.exceptions import NoPathError

        with pytest.raises(NoPathError):
            LiangShenRouter(paper_net).route(7, 1)

    def test_gst_sizes_match_observations(self, paper_net):
        aux = build_routing_graph(paper_net, 1, 7)
        assert aux.sizes.within_bounds()
        # |V'| = Σ(|Λ_in| + |Λ_out|) over the (corrected) Fig. 2 listing.
        expected_nodes = sum(
            len(PAPER_LAMBDA_IN[v]) + len(PAPER_LAMBDA_OUT[v]) for v in range(1, 8)
        )
        assert aux.sizes.num_layer_nodes == expected_nodes == 37
