"""Unit tests for the WDMNetwork model."""

import math

import pytest

from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.exceptions import (
    NetworkStructureError,
    UnknownLinkError,
    UnknownNodeError,
    WavelengthError,
    WavelengthUnavailableError,
)


@pytest.fixture
def net() -> WDMNetwork:
    net = WDMNetwork(num_wavelengths=3, default_conversion=FixedCostConversion(0.5))
    net.add_nodes(["a", "b", "c"])
    net.add_link("a", "b", {0: 1.0, 2: 2.0})
    net.add_link("b", "c", {1: 3.0})
    return net


class TestConstruction:
    def test_counts(self, net):
        assert net.num_nodes == 3
        assert net.num_links == 2
        assert net.num_wavelengths == 3

    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            WDMNetwork(num_wavelengths=0)

    def test_duplicate_node_rejected(self, net):
        with pytest.raises(NetworkStructureError):
            net.add_node("a")

    def test_duplicate_link_rejected(self, net):
        with pytest.raises(NetworkStructureError):
            net.add_link("a", "b", {1: 1.0})

    def test_self_loop_rejected(self, net):
        with pytest.raises(NetworkStructureError):
            net.add_link("a", "a", {0: 1.0})

    def test_link_with_unknown_node(self, net):
        with pytest.raises(UnknownNodeError):
            net.add_link("a", "zzz", {0: 1.0})

    def test_negative_cost_rejected(self, net):
        with pytest.raises(NetworkStructureError):
            net.add_link("c", "a", {0: -1.0})

    def test_infinite_cost_means_unavailable(self, net):
        link = net.add_link("c", "a", {0: math.inf, 1: 2.0})
        assert link.wavelengths == frozenset({1})

    def test_out_of_range_wavelength_rejected(self, net):
        with pytest.raises(WavelengthError):
            net.add_link("c", "a", {7: 1.0})

    def test_empty_availability_allowed(self, net):
        link = net.add_link("c", "b", {})
        assert link.wavelengths == frozenset()


class TestQueries:
    def test_link_cost(self, net):
        assert net.link_cost("a", "b", 0) == 1.0
        assert net.link_cost("a", "b", 2) == 2.0

    def test_link_cost_unavailable(self, net):
        with pytest.raises(WavelengthUnavailableError):
            net.link_cost("a", "b", 1)

    def test_unknown_link(self, net):
        with pytest.raises(UnknownLinkError):
            net.link("a", "c")

    def test_available_wavelengths(self, net):
        assert net.available_wavelengths("a", "b") == frozenset({0, 2})

    def test_has_link(self, net):
        assert net.has_link("a", "b")
        assert not net.has_link("b", "a")

    def test_successors_predecessors(self, net):
        assert net.successors("a") == ["b"]
        assert net.predecessors("c") == ["b"]
        assert net.predecessors("a") == []

    def test_node_index_round_trip(self, net):
        for node in net.nodes():
            assert net.node_label(net.node_index(node)) == node

    def test_unknown_node_query(self, net):
        with pytest.raises(UnknownNodeError):
            net.out_links("ghost")


class TestDegreeAndSizeParameters:
    def test_degrees(self, net):
        assert net.out_degree("a") == 1
        assert net.in_degree("b") == 1
        assert net.max_degree == 1

    def test_max_degree_tracks_in_and_out(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(list(range(5)))
        for i in range(1, 5):
            net.add_link(i, 0, {0: 1.0})
        assert net.max_degree == 4  # in-degree of the hub

    def test_k0(self, net):
        assert net.max_link_wavelengths == 2

    def test_total_link_wavelengths(self, net):
        assert net.total_link_wavelengths == 3  # |{0,2}| + |{1}|

    def test_min_link_cost(self, net):
        assert net.min_link_cost() == 1.0

    def test_min_link_cost_empty(self):
        net = WDMNetwork(num_wavelengths=1)
        assert net.min_link_cost() == math.inf


class TestLambdaSets:
    def test_lambda_in_out(self, net):
        assert net.lambda_out("a") == frozenset({0, 2})
        assert net.lambda_in("b") == frozenset({0, 2})
        assert net.lambda_out("b") == frozenset({1})
        assert net.lambda_in("c") == frozenset({1})
        assert net.lambda_in("a") == frozenset()


class TestConversionAssignment:
    def test_default_model(self, net):
        assert net.conversion_cost("b", 0, 1) == 0.5

    def test_per_node_override(self, net):
        net.set_conversion("b", NoConversion())
        assert net.conversion_cost("b", 0, 1) == math.inf
        assert net.conversion_cost("a", 0, 1) == 0.5

    def test_node_specific_at_add_time(self):
        net = WDMNetwork(num_wavelengths=2)
        net.add_node("x", conversion=NoConversion())
        assert net.conversion_cost("x", 0, 1) == math.inf

    def test_identity_free_via_any_model(self, net):
        assert net.conversion_cost("a", 1, 1) == 0.0


class TestCopy:
    def test_copy_is_deep_for_structure(self, net):
        clone = net.copy()
        clone.add_node("d")
        clone.add_link("c", "d", {0: 1.0})
        assert net.num_nodes == 3
        assert net.num_links == 2
        assert clone.num_nodes == 4

    def test_copy_preserves_conversions(self, net):
        net.set_conversion("b", NoConversion())
        clone = net.copy()
        assert clone.conversion_cost("b", 0, 1) == math.inf
