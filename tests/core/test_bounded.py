"""Unit tests for conversion-budget routing."""

import pytest

from repro.core.bounded import BoundedConversionRouter, conversion_cost_profile
from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError


def staircase_net(levels: int = 3, convert_cost: float = 0.1) -> WDMNetwork:
    """A chain a0 -> a1 -> ... where each link only offers wavelength i%2,
    so every hop boundary needs a conversion; plus a direct expensive link."""
    net = WDMNetwork(
        num_wavelengths=2, default_conversion=FixedCostConversion(convert_cost)
    )
    for i in range(levels + 1):
        net.add_node(i)
    for i in range(levels):
        net.add_link(i, i + 1, {i % 2: 1.0})
    net.add_link(0, levels, {0: 50.0})
    return net


class TestBudgetSemantics:
    def test_zero_budget_is_lightpath(self, paper_net):
        router = BoundedConversionRouter(paper_net)
        result = router.route(1, 7, max_conversions=0)
        assert result.path.is_lightpath
        assert result.cost == pytest.approx(2.0)

    def test_zero_budget_blocks_conversion_only_routes(self):
        net = staircase_net(levels=3)
        # Only route within budget 0 is the direct expensive link.
        result = BoundedConversionRouter(net).route(0, 3, max_conversions=0)
        assert result.path.num_hops == 1
        assert result.cost == pytest.approx(50.0)

    def test_budget_respected(self):
        net = staircase_net(levels=4)
        for q in range(4):
            result = BoundedConversionRouter(net).route(0, 4, max_conversions=q)
            assert result.path.num_conversions <= q

    def test_large_budget_matches_unconstrained(self, paper_net):
        bounded = BoundedConversionRouter(paper_net)
        unconstrained = LiangShenRouter(paper_net)
        for s, t in [(1, 6), (1, 7), (5, 7)]:
            a = bounded.route(s, t, max_conversions=10).cost
            b = unconstrained.route(s, t).cost
            assert a == pytest.approx(b)

    def test_cost_non_increasing_in_budget(self):
        net = staircase_net(levels=4)
        costs = [
            BoundedConversionRouter(net).route(0, 4, max_conversions=q).cost
            for q in range(5)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(costs, costs[1:]))
        # At full budget the staircase (4 links + 3 conversions) wins.
        assert costs[-1] == pytest.approx(4 + 3 * 0.1)

    def test_negative_budget_rejected(self, paper_net):
        with pytest.raises(ValueError):
            BoundedConversionRouter(paper_net).route(1, 7, max_conversions=-1)

    def test_no_path_within_budget_raises(self):
        net = staircase_net(levels=2)
        # Remove the escape hatch: budget 0 has no route at all.
        pruned = WDMNetwork(2, FixedCostConversion(0.1))
        for i in range(3):
            pruned.add_node(i)
        pruned.add_link(0, 1, {0: 1.0})
        pruned.add_link(1, 2, {1: 1.0})
        with pytest.raises(NoPathError):
            BoundedConversionRouter(pruned).route(0, 2, max_conversions=0)
        assert (
            BoundedConversionRouter(pruned).route(0, 2, max_conversions=1).cost
            == pytest.approx(2.1)
        )

    @pytest.mark.parametrize("trial", range(15))
    def test_budget_zero_only_lightpaths_random(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(600 + trial)
        nodes = net.nodes()
        try:
            result = BoundedConversionRouter(net).route(
                nodes[0], nodes[-1], max_conversions=0
            )
        except NoPathError:
            return
        assert result.path.is_lightpath
        result.path.validate(net)


class TestCostProfile:
    def test_profile_of_staircase(self):
        net = staircase_net(levels=3)
        profile = conversion_cost_profile(net, 0, 3)
        assert profile[0] == (0, pytest.approx(50.0))
        assert profile[-1][1] == pytest.approx(3 + 2 * 0.1)
        costs = [c for _q, c in profile]
        assert costs == sorted(costs, reverse=True)

    def test_profile_ends_at_unconstrained_optimum(self, paper_net):
        profile = conversion_cost_profile(paper_net, 1, 6)
        unconstrained = LiangShenRouter(paper_net).route(1, 6).cost
        assert profile[-1][1] == pytest.approx(unconstrained)

    def test_profile_skips_infeasible_budgets(self):
        net = WDMNetwork(2, FixedCostConversion(0.1))
        for i in range(3):
            net.add_node(i)
        net.add_link(0, 1, {0: 1.0})
        net.add_link(1, 2, {1: 1.0})
        profile = conversion_cost_profile(net, 0, 2)
        assert profile[0][0] == 1  # budget 0 infeasible, omitted

    def test_profile_unreachable_raises(self):
        net = WDMNetwork(1)
        net.add_nodes([0, 1])
        with pytest.raises(NoPathError):
            conversion_cost_profile(net, 0, 1)

    def test_profile_survives_plateaus(self):
        """cost(0)=cost(1) > cost(2): the sweep must not stop at the
        plateau (regression guard for the flattening heuristic)."""
        net = WDMNetwork(num_wavelengths=3, default_conversion=FixedCostConversion(0.5))
        for node in ["s", "a", "b", "t"]:
            net.add_node(node)
        net.add_link("s", "t", {0: 10.0})               # 0 conversions, cost 10
        net.add_link("s", "a", {0: 1.0})
        net.add_link("a", "b", {1: 1.0})
        net.add_link("b", "t", {2: 1.0})                 # 2 conversions, cost 4
        profile = conversion_cost_profile(net, "s", "t")
        budgets = dict(profile)
        assert budgets[0] == pytest.approx(10.0)
        assert budgets[1] == pytest.approx(10.0)
        assert budgets[2] == pytest.approx(4.0)
