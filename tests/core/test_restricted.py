"""Theorem 4 restricted fast path: fused builder identity, tree parity."""

import pytest
from hypothesis import given, settings

from repro.core.auxiliary import build_layered_graph
from repro.core.conversion import (
    FixedCostConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.shortestpath.restricted import (
    RESTRICTED_K0_CROSSOVER,
    build_restricted_graph,
    restricted_applicable,
)
from repro.topology.generators import waxman_network
from repro.topology.reference import paper_figure1_network
from tests.strategies import wdm_networks


def mixed_models_network():
    """Small network exercising every specialized conversion emitter."""
    net = WDMNetwork(num_wavelengths=3, default_conversion=FixedCostConversion(0.5))
    for v in range(5):
        net.add_node(v)
    net.set_conversion(1, NoConversion())
    net.set_conversion(2, RangeLimitedConversion(1, cost_per_step=0.25))
    net.set_conversion(
        3, MatrixConversion({(0, 1): 1.0, (1, 2): 1.0, (2, 0): 2.0, (1, 1): 0.0})
    )
    net.add_link(0, 1, {0: 1.0, 1: 2.0})
    net.add_link(1, 2, {1: 1.0, 2: 0.5})
    net.add_link(2, 3, {0: 0.25, 2: 1.0})
    net.add_link(3, 4, {1: 1.5})
    net.add_link(4, 0, {0: 2.0, 1: 0.5})
    net.add_link(1, 3, {2: 3.0})
    return net


NETWORKS = {
    "fig1": paper_figure1_network,
    "waxman": lambda: waxman_network(18, 4, seed=11),
    "mixed": mixed_models_network,
}


@pytest.mark.parametrize("name", sorted(NETWORKS))
class TestBuilderIdentity:
    def test_csr_byte_identical(self, name):
        net = NETWORKS[name]()
        gen = build_layered_graph(net)
        res = build_restricted_graph(net)
        for a, b in zip(gen.graph.csr(), res.graph.csr()):
            assert list(a) == list(b)
        assert gen.graph.num_nodes == res.graph.num_nodes

    def test_decode_tables_identical(self, name):
        net = NETWORKS[name]()
        gen = build_layered_graph(net)
        res = build_restricted_graph(net)
        assert gen.decode == res.decode
        assert gen.x_ids == res.x_ids
        assert gen.y_ids == res.y_ids
        assert gen.x_by_node == res.x_by_node
        assert gen.y_by_node == res.y_by_node

    def test_size_accounting_identical(self, name):
        net = NETWORKS[name]()
        assert build_layered_graph(net).sizes == build_restricted_graph(net).sizes


class TestApplicability:
    def test_requires_genuine_restriction(self):
        net = WDMNetwork(num_wavelengths=2)
        net.add_node(0)
        net.add_node(1)
        net.add_link(0, 1, {0: 1.0, 1: 1.0})  # k0 == k: nothing to gain
        assert not restricted_applicable(net)

    def test_requires_links(self):
        net = WDMNetwork(num_wavelengths=4)
        net.add_node(0)
        assert not restricted_applicable(net)

    def test_small_k0_below_k_applies(self):
        net = WDMNetwork(num_wavelengths=8)
        net.add_node(0)
        net.add_node(1)
        net.add_link(0, 1, {3: 1.0})
        assert restricted_applicable(net)

    def test_crossover_is_the_cutoff(self):
        net = WDMNetwork(num_wavelengths=RESTRICTED_K0_CROSSOVER + 2)
        net.add_node(0)
        net.add_node(1)
        costs = {w: 1.0 for w in range(RESTRICTED_K0_CROSSOVER + 1)}
        net.add_link(0, 1, costs)
        assert not restricted_applicable(net)
        assert restricted_applicable(net, crossover=RESTRICTED_K0_CROSSOVER + 1)

    def test_paper_example_is_restricted(self):
        assert restricted_applicable(paper_figure1_network())


@pytest.mark.parametrize("name", sorted(NETWORKS))
class TestTreeParity:
    def test_trees_hop_identical_to_general(self, name):
        net = NETWORKS[name]()
        general = LiangShenRouter(net, restricted=False)
        fast = LiangShenRouter(net, restricted=True)
        for source in net.nodes():
            reference = general.route_tree(source)
            tree = fast.route_tree(source)
            assert tree.keys() == reference.keys()
            for target in reference:
                assert tree[target].hops == reference[target].hops
                assert tree[target].total_cost == reference[target].total_cost

    def test_single_pair_unaffected(self, name):
        net = NETWORKS[name]()
        general = LiangShenRouter(net, restricted=False)
        fast = LiangShenRouter(net, restricted=True)
        for source in net.nodes():
            for target in net.nodes():
                if source == target:
                    continue
                try:
                    a = general.route(source, target)
                except Exception as exc:
                    with pytest.raises(type(exc)):
                        fast.route(source, target)
                    continue
                b = fast.route(source, target)
                assert a.path.hops == b.path.hops
                assert a.stats.settled == b.stats.settled


class TestRouterPlumbing:
    def test_auto_matches_applicability(self):
        net = paper_figure1_network()
        assert LiangShenRouter(net).restricted == restricted_applicable(net)

    def test_forced_off(self):
        assert LiangShenRouter(paper_figure1_network(), restricted=False).restricted is False

    def test_restricted_tree_avoids_g_all(self):
        router = LiangShenRouter(paper_figure1_network(), restricted=True)
        router.route_tree(1)
        assert router._all_pairs is None  # terminal-free: no G_all build

    def test_source_without_output_wavelengths(self):
        net = WDMNetwork(num_wavelengths=4)
        for v in range(3):
            net.add_node(v)
        net.add_link(0, 1, {0: 1.0})  # node 2 emits nothing
        router = LiangShenRouter(net, restricted=True)
        assert router.route_tree(2) == {}

    def test_all_pairs_stays_on_g_all(self):
        # Serial/parallel byte-parity requires the all-pairs sweep to keep
        # using the shared G_all whatever the restricted setting.
        net = paper_figure1_network()
        fast = LiangShenRouter(net, restricted=True)
        general = LiangShenRouter(net, restricted=False)
        a = fast.route_all_pairs()
        b = general.route_all_pairs()
        assert a.stats.settled == b.stats.settled
        assert {p: path.hops for p, path in a.paths.items()} == {
            p: path.hops for p, path in b.paths.items()
        }


@given(net=wdm_networks())
@settings(max_examples=40, deadline=None)
def test_fused_builder_identity_property(net):
    gen = build_layered_graph(net)
    res = build_restricted_graph(net)
    for a, b in zip(gen.graph.csr(), res.graph.csr()):
        assert list(a) == list(b)
    assert gen.decode == res.decode
    assert gen.sizes == res.sizes


@given(net=wdm_networks(max_nodes=5))
@settings(max_examples=30, deadline=None)
def test_restricted_tree_parity_property(net):
    general = LiangShenRouter(net, restricted=False)
    fast = LiangShenRouter(net, restricted=True)
    for source in net.nodes():
        reference = general.route_tree(source)
        tree = fast.route_tree(source)
        assert tree.keys() == reference.keys()
        for target in reference:
            assert tree[target].hops == reference[target].hops
            assert tree[target].total_cost == reference[target].total_cost
