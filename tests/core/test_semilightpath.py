"""Unit tests for the Semilightpath object and Eq. (1) evaluation."""

import math

import pytest

from repro.core.conversion import NoConversion
from repro.core.semilightpath import Conversion, Hop, Semilightpath
from repro.exceptions import (
    ConversionError,
    InvalidPathError,
    WavelengthUnavailableError,
)


def make_path(*triples):
    return Semilightpath(hops=tuple(Hop(t, h, w) for t, h, w in triples))


class TestStructure:
    def test_requires_at_least_one_hop(self):
        with pytest.raises(InvalidPathError):
            Semilightpath(hops=())

    def test_rejects_broken_chain(self):
        with pytest.raises(InvalidPathError, match="hop 0 ends"):
            make_path(("a", "b", 0), ("c", "d", 0))

    def test_endpoints(self):
        path = make_path(("a", "b", 0), ("b", "c", 1))
        assert path.source == "a"
        assert path.target == "c"
        assert path.num_hops == 2

    def test_nodes_sequence(self):
        path = make_path(("a", "b", 0), ("b", "c", 1))
        assert path.nodes() == ["a", "b", "c"]

    def test_wavelengths(self):
        path = make_path(("a", "b", 0), ("b", "c", 1))
        assert path.wavelengths() == [0, 1]

    def test_iteration_and_len(self):
        path = make_path(("a", "b", 0), ("b", "c", 1))
        assert len(path) == 2
        assert [h.head for h in path] == ["b", "c"]


class TestConversions:
    def test_no_switch_no_conversions(self):
        path = make_path(("a", "b", 0), ("b", "c", 0))
        assert path.conversions() == []
        assert path.num_conversions == 0
        assert path.is_lightpath

    def test_switch_recorded(self):
        path = make_path(("a", "b", 0), ("b", "c", 2))
        assert path.conversions() == [
            Conversion(node="b", from_wavelength=0, to_wavelength=2)
        ]
        assert path.num_conversions == 1
        assert not path.is_lightpath

    def test_multiple_switches(self):
        path = make_path(("a", "b", 0), ("b", "c", 1), ("c", "d", 0))
        assert path.num_conversions == 2


class TestNodeSimplicity:
    def test_simple_path(self):
        assert make_path(("a", "b", 0), ("b", "c", 0)).is_node_simple

    def test_revisiting_walk(self):
        walk = make_path(
            ("a", "b", 0), ("b", "c", 0), ("c", "b", 1), ("b", "d", 1)
        )
        assert not walk.is_node_simple

    def test_cycle_back_to_source(self):
        walk = make_path(("a", "b", 0), ("b", "a", 1))
        assert not walk.is_node_simple


class TestCostEvaluation:
    def test_eq1_decomposition(self, tiny_net):
        path = make_path(("a", "b", 0), ("b", "c", 1))
        # w(a->b, λ1) + c_b(λ1, λ2) + w(b->c, λ2) = 1 + 0.5 + 1
        assert path.evaluate_cost(tiny_net) == pytest.approx(2.5)

    def test_lightpath_has_no_conversion_cost(self, tiny_net):
        path = make_path(("a", "c", 0))
        assert path.evaluate_cost(tiny_net) == pytest.approx(4.0)

    def test_unavailable_wavelength_raises(self, tiny_net):
        path = make_path(("a", "b", 1))  # a->b only offers λ1 (index 0)
        with pytest.raises(WavelengthUnavailableError):
            path.evaluate_cost(tiny_net)

    def test_unsupported_conversion_raises(self, tiny_net):
        tiny_net.set_conversion("b", NoConversion())
        path = make_path(("a", "b", 0), ("b", "c", 1))
        with pytest.raises(ConversionError):
            path.evaluate_cost(tiny_net)

    def test_validate_accepts_correct_claim(self, tiny_net):
        path = Semilightpath(
            hops=(Hop("a", "b", 0), Hop("b", "c", 1)), total_cost=2.5
        )
        path.validate(tiny_net)  # must not raise

    def test_validate_rejects_wrong_claim(self, tiny_net):
        path = Semilightpath(
            hops=(Hop("a", "b", 0), Hop("b", "c", 1)), total_cost=99.0
        )
        with pytest.raises(InvalidPathError, match="claimed cost"):
            path.validate(tiny_net)

    def test_validate_ignores_nan_claim(self, tiny_net):
        path = make_path(("a", "b", 0), ("b", "c", 1))
        assert math.isnan(path.total_cost)
        path.validate(tiny_net)  # must not raise


class TestFromSequence:
    def test_builds_and_prices(self, tiny_net):
        path = Semilightpath.from_sequence(["a", "b", "c"], [0, 1], tiny_net)
        assert path.total_cost == pytest.approx(2.5)

    def test_without_network_cost_is_nan(self):
        path = Semilightpath.from_sequence(["a", "b"], [0])
        assert math.isnan(path.total_cost)

    def test_wavelength_count_mismatch(self):
        with pytest.raises(InvalidPathError):
            Semilightpath.from_sequence(["a", "b", "c"], [0])

    def test_too_few_nodes(self):
        with pytest.raises(InvalidPathError):
            Semilightpath.from_sequence(["a"], [])
