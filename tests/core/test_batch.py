"""Unit tests for the amortized BatchRouter."""

import math

import pytest

from repro.core.batch import BatchRouter
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError


class TestBatchRouter:
    def test_matches_per_query_router(self, paper_net):
        batch = BatchRouter(paper_net)
        single = LiangShenRouter(paper_net)
        for s in paper_net.nodes():
            for t in paper_net.nodes():
                if s == t:
                    continue
                try:
                    expected = single.route(s, t).cost
                except NoPathError:
                    expected = None
                if expected is None:
                    assert batch.cost(s, t) == math.inf
                    with pytest.raises(NoPathError):
                        batch.route(s, t)
                else:
                    assert batch.route(s, t).total_cost == pytest.approx(expected)
                    assert batch.cost(s, t) == pytest.approx(expected)

    def test_tree_caching(self, paper_net):
        batch = BatchRouter(paper_net)
        assert batch.cached_sources == 0
        batch.route(1, 7)
        assert batch.cached_sources == 1
        batch.route(1, 6)  # same source: no new tree
        assert batch.cached_sources == 1
        batch.route(2, 7)
        assert batch.cached_sources == 2

    def test_cost_of_self_is_zero(self, paper_net):
        assert BatchRouter(paper_net).cost(1, 1) == 0.0

    def test_route_to_self_rejected(self, paper_net):
        with pytest.raises(ValueError):
            BatchRouter(paper_net).route(1, 1)

    def test_tree_returns_copy(self, paper_net):
        batch = BatchRouter(paper_net)
        tree = batch.tree(1)
        tree.clear()
        assert batch.tree(1)  # internal cache unaffected

    def test_paths_validate(self, paper_net):
        batch = BatchRouter(paper_net)
        for target, path in batch.tree(1).items():
            path.validate(paper_net)

    def test_batch_faster_for_many_queries(self, ):
        """Amortization sanity: 3 sources x many targets beats per-query."""
        import time

        from benchmarks.conftest import sparse_wan

        net = sparse_wan(96, seed=60)
        nodes = net.nodes()
        sources = nodes[:3]

        start = time.perf_counter()
        batch = BatchRouter(net)
        for s in sources:
            for t in nodes:
                if s != t:
                    batch.cost(s, t)
        batch_time = time.perf_counter() - start

        start = time.perf_counter()
        single = LiangShenRouter(net)
        for s in sources:
            for t in nodes:
                if s != t:
                    try:
                        single.route(s, t)
                    except NoPathError:
                        pass
        single_time = time.perf_counter() - start
        assert batch_time < single_time


class TestCacheCounters:
    def test_hits_misses(self, paper_net):
        batch = BatchRouter(paper_net)
        assert batch.cache_counters() == {"hits": 0, "misses": 0, "evictions": 0}
        batch.route(1, 7)
        batch.route(1, 6)
        batch.cost(2, 7)
        counters = batch.cache_counters()
        assert counters["misses"] == 2
        assert counters["hits"] == 1
        assert counters["evictions"] == 0

    def test_lru_eviction(self, paper_net):
        batch = BatchRouter(paper_net, max_cached_trees=2)
        batch.cost(1, 7)
        batch.cost(2, 7)
        batch.cost(3, 7)  # evicts source 1
        assert batch.cached_sources == 2
        assert batch.cache_evictions == 1
        batch.cost(1, 7)  # rebuilt: a miss, evicts source 2
        assert batch.cache_misses == 4
        assert batch.cache_evictions == 2

    def test_lru_order_refreshed_by_hits(self, paper_net):
        batch = BatchRouter(paper_net, max_cached_trees=2)
        batch.cost(1, 7)
        batch.cost(2, 7)
        batch.cost(1, 6)  # touch source 1: now 2 is least-recent
        batch.cost(3, 7)  # evicts source 2, not 1
        batch.cost(1, 2)  # still cached
        assert batch.cache_hits == 2
        assert batch.cache_misses == 3

    def test_eviction_preserves_correctness(self, paper_net):
        bounded = BatchRouter(paper_net, max_cached_trees=1)
        unbounded = BatchRouter(paper_net)
        for s in paper_net.nodes():
            for t in paper_net.nodes():
                if s != t:
                    assert bounded.cost(s, t) == unbounded.cost(s, t)

    def test_invalid_bound_rejected(self, paper_net):
        with pytest.raises(ValueError):
            BatchRouter(paper_net, max_cached_trees=0)
