"""Unit tests for wavelength helpers."""

import pytest

from repro.core.wavelengths import (
    check_wavelength,
    normalize_wavelengths,
    wavelength_name,
)
from repro.exceptions import WavelengthError


class TestWavelengthName:
    def test_matches_paper_notation(self):
        assert wavelength_name(0) == "λ1"
        assert wavelength_name(3) == "λ4"


class TestCheckWavelength:
    def test_valid_passes_through(self):
        assert check_wavelength(2, 4) == 2

    def test_rejects_negative(self):
        with pytest.raises(WavelengthError):
            check_wavelength(-1, 4)

    def test_rejects_too_large(self):
        with pytest.raises(WavelengthError):
            check_wavelength(4, 4)

    def test_rejects_bool(self):
        with pytest.raises(WavelengthError):
            check_wavelength(True, 4)

    def test_rejects_float(self):
        with pytest.raises(WavelengthError):
            check_wavelength(1.0, 4)


class TestNormalizeWavelengths:
    def test_collapses_duplicates(self):
        assert normalize_wavelengths([0, 1, 1, 0], 4) == frozenset({0, 1})

    def test_empty_allowed(self):
        assert normalize_wavelengths([], 4) == frozenset()

    def test_out_of_range_rejected(self):
        with pytest.raises(WavelengthError):
            normalize_wavelengths([0, 9], 4)
