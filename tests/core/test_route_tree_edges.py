"""Edge cases for Corollary 1 trees (LiangShenRouter.route_tree) and the
service-level exposure (RoutingService.route_tree)."""

from __future__ import annotations

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError, UnknownNodeError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent
from repro.service.service import RoutingService


def _line() -> WDMNetwork:
    """a -> b -> c on one wavelength, with z dark (no usable channels)."""
    net = WDMNetwork(num_wavelengths=1,
                     default_conversion=FixedCostConversion(0.5))
    for node in "abcz":
        net.add_node(node)
    net.add_link("a", "b", {0: 1.0})
    net.add_link("b", "c", {0: 1.0})
    return net


class TestRouteTreeEdges:
    def test_dark_source_yields_empty_tree(self):
        tree = LiangShenRouter(_line()).route_tree("z")
        assert tree == {}

    def test_unknown_source_raises(self):
        with pytest.raises(UnknownNodeError):
            LiangShenRouter(_line()).route_tree("ghost")

    def test_tree_omits_source_and_unreachable(self):
        tree = LiangShenRouter(_line()).route_tree("b")
        assert set(tree) == {"c"}  # not a (upstream), not z (dark), not b

    def test_tree_paths_match_single_pair_routes(self, paper_net):
        router = LiangShenRouter(paper_net)
        tree = router.route_tree(1)
        assert tree  # figure 1 is connected from node 1
        for target, path in tree.items():
            single = router.route(1, target).path
            assert path.total_cost == pytest.approx(single.total_cost)
            # Hop-identity, not just cost equality: the tree decodes the
            # exact same semilightpaths the pairwise query would.
            assert path.hops == single.hops

    def test_tree_shrinks_under_degraded_overlay(self):
        net = _line()
        injector = FaultInjector(net)
        injector.apply(FaultEvent(0.1, "link_fail", tail="b", head="c"))
        degraded = injector.network_view()
        tree = LiangShenRouter(degraded).route_tree("a")
        assert set(tree) == {"b"}  # c fell off with the severed b->c fiber
        with pytest.raises(NoPathError):
            LiangShenRouter(degraded).route("a", "c")


class TestServiceRouteTree:
    def test_matches_the_router(self, paper_net):
        service = RoutingService(lambda: paper_net)
        tree = service.route_tree(1)
        direct = LiangShenRouter(paper_net).route_tree(1)
        assert set(tree) == set(direct)
        for target, path in tree.items():
            assert path.hops == direct[target].hops
            assert path.total_cost == pytest.approx(direct[target].total_cost)

    def test_tree_primes_single_pair_queries(self, paper_net):
        service = RoutingService(lambda: paper_net)
        tree = service.route_tree(1)
        for target in tree:
            # Every tree entry must now serve (and agree with) route().
            assert service.route(1, target).hops == tree[target].hops

    def test_dark_source_is_empty_at_the_service_too(self):
        service = RoutingService(_line)
        assert service.route_tree("z") == {}
