"""LazyForest: batched decoding from one parent forest, decoded on demand."""

import math

import pytest

from repro.core.batch import BatchRouter
from repro.core.forest import run_forest
from repro.core.routing import LiangShenRouter, run_tree
from repro.topology.reference import paper_figure1_network


@pytest.fixture
def net():
    return paper_figure1_network()


@pytest.fixture
def aux(net):
    return LiangShenRouter(net).all_pairs_graph()


class TestLazyForest:
    def test_paths_match_eager_tree(self, net, aux):
        for source in net.nodes():
            forest = run_forest(aux, source)
            tree, _ = run_tree(aux, source)
            assert forest.materialize().keys() == tree.keys()
            for target, path in tree.items():
                lazy = forest.path_to(target)
                assert lazy.hops == path.hops
                assert lazy.total_cost == path.total_cost

    def test_decoding_is_lazy_and_memoized(self, aux):
        forest = run_forest(aux, 1)
        assert forest.decoded_targets == 0
        first = forest.path_to(7)
        assert forest.decoded_targets == 1
        assert forest.path_to(7) is first  # cache hit, not a re-decode
        assert forest.decoded_targets == 1

    def test_cost_does_not_decode(self, aux):
        forest = run_forest(aux, 1)
        cost = forest.cost(7)
        assert forest.decoded_targets == 0
        assert cost == forest.path_to(7).total_cost

    def test_source_maps_to_none_and_zero_cost(self, aux):
        forest = run_forest(aux, 1)
        assert forest.path_to(1) is None
        assert forest.cost(1) == 0.0

    def test_unknown_target_raises(self, aux):
        forest = run_forest(aux, 1)
        with pytest.raises(KeyError):
            forest.path_to("nonexistent")

    def test_unreachable_target_is_none_and_inf(self):
        from repro.core.network import WDMNetwork

        net = WDMNetwork(num_wavelengths=2)
        for v in range(3):
            net.add_node(v)
        net.add_link(0, 1, {0: 1.0})  # node 2 is dark
        aux = LiangShenRouter(net).all_pairs_graph()
        forest = run_forest(aux, 0)
        assert forest.path_to(2) is None
        assert forest.cost(2) == math.inf

    def test_materialize_reuses_decoded(self, aux):
        forest = run_forest(aux, 1)
        first = forest.path_to(7)
        tree = forest.materialize()
        assert tree[7] is first


class TestForestBackedBatchRouter:
    def test_counters_and_results(self, net):
        router = BatchRouter(net)
        path = router.route(1, 7)
        again = router.route(1, 6)
        assert router.cache_counters() == {"hits": 1, "misses": 1, "evictions": 0}
        assert path.total_cost == LiangShenRouter(net).route(1, 7).cost
        assert again.hops

    def test_point_query_decodes_only_its_target(self, net):
        router = BatchRouter(net)
        router.route(1, 7)
        assert router._forests[1].decoded_targets == 1

    def test_tree_matches_inner_router(self, net):
        router = BatchRouter(net)
        tree = router.tree(1)
        reference = LiangShenRouter(net).route_tree(1)
        assert tree.keys() == reference.keys()
        for t in tree:
            assert tree[t].hops == reference[t].hops

    def test_lru_eviction(self, net):
        router = BatchRouter(net, max_cached_trees=2)
        nodes = list(net.nodes())[:3]
        for s in nodes:
            router.cost(s, nodes[0] if s != nodes[0] else nodes[1])
        assert router.cached_sources == 2
        assert router.cache_evictions == 1

    def test_forest_survives_scratch_reuse(self, net):
        # The lifetime contract: a cached forest decodes correctly even
        # after other queries would have recycled shared scratch.
        router = BatchRouter(net)
        forest = router._forest(1)
        inner = router._inner
        for s in list(net.nodes())[:4]:
            if s != 1:
                inner.route_tree(s)  # churns the inner router's scratch pool
        assert forest.path_to(7).hops == LiangShenRouter(net).route(1, 7).path.hops
