"""Unit tests for Restrictions 1-2 and the Theorem 2 guarantee."""

import pytest

from repro.core.conversion import FixedCostConversion, MatrixConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.core.restrictions import (
    check_restriction1,
    check_restriction2,
    enforce_restrictions,
    is_node_simple,
)
from repro.core.routing import LiangShenRouter
from repro.exceptions import RestrictionViolation


def two_hop_net(conversion):
    net = WDMNetwork(num_wavelengths=2, default_conversion=conversion)
    net.add_nodes(["a", "b", "c"])
    net.add_link("a", "b", {0: 1.0})
    net.add_link("b", "c", {1: 1.0})
    return net


class TestRestriction1:
    def test_full_conversion_satisfies(self):
        net = two_hop_net(FixedCostConversion(0.5))
        assert check_restriction1(net) == []

    def test_no_conversion_violates_when_needed(self):
        net = two_hop_net(NoConversion())
        violations = check_restriction1(net)
        assert ("b", 0, 1) in violations

    def test_no_violation_when_sets_align(self):
        # With λ_in == λ_out on every wavelength, NoConversion is fine.
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        net.add_link("b", "c", {0: 1.0})
        assert check_restriction1(net) == []

    def test_matrix_gap_detected(self, paper_net):
        # The paper example forbids λ2->λ3 at node 3 — a Restriction 1 gap.
        violations = check_restriction1(paper_net)
        assert (3, 1, 2) in violations


class TestRestriction2:
    def test_cheap_conversion_satisfies(self):
        net = two_hop_net(FixedCostConversion(0.5))
        holds, max_conv, min_link = check_restriction2(net)
        assert holds
        assert max_conv == pytest.approx(0.5)
        assert min_link == pytest.approx(1.0)

    def test_expensive_conversion_violates(self):
        net = two_hop_net(FixedCostConversion(1.5))
        holds, max_conv, min_link = check_restriction2(net)
        assert not holds
        assert max_conv == pytest.approx(1.5)

    def test_equality_violates_strictness(self):
        net = two_hop_net(FixedCostConversion(1.0))
        holds, _, _ = check_restriction2(net)
        assert not holds

    def test_empty_network_vacuous(self):
        net = WDMNetwork(num_wavelengths=1)
        holds, max_conv, min_link = check_restriction2(net)
        assert holds

    def test_only_incident_wavelengths_counted(self):
        # A huge conversion cost between wavelengths never incident to the
        # node must not violate Eq. (2)'s quantifiers.
        model = MatrixConversion({(0, 1): 0.1, (2, 3): 99.0})
        net = WDMNetwork(num_wavelengths=4, default_conversion=model)
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        net.add_link("b", "c", {1: 1.0})
        holds, max_conv, _ = check_restriction2(net)
        assert holds
        assert max_conv == pytest.approx(0.1)


class TestEnforce:
    def test_passes_on_compliant_network(self):
        enforce_restrictions(two_hop_net(FixedCostConversion(0.5)))

    def test_raises_on_restriction1(self):
        with pytest.raises(RestrictionViolation, match="Restriction 1"):
            enforce_restrictions(two_hop_net(NoConversion()))

    def test_raises_on_restriction2(self):
        with pytest.raises(RestrictionViolation, match="Restriction 2"):
            enforce_restrictions(two_hop_net(FixedCostConversion(2.0)))


class TestTheorem2:
    """Under Restrictions 1-2 the optimum is node-simple (Theorem 2)."""

    @pytest.mark.parametrize("trial", range(30))
    def test_optimal_paths_node_simple_under_restrictions(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(trial)
        # Rebuild with a conversion model that satisfies both restrictions.
        floor = net.min_link_cost()
        if floor <= 0 or floor == float("inf"):
            pytest.skip("degenerate link costs")
        compliant = net.copy()
        model = FixedCostConversion(0.4 * floor)
        for node in compliant.nodes():
            compliant.set_conversion(node, model)
        enforce_restrictions(compliant)
        router = LiangShenRouter(compliant)
        tree = router.route_tree(compliant.nodes()[0])
        for path in tree.values():
            assert is_node_simple(path), path
