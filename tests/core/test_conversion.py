"""Unit tests for the conversion cost models."""

import math

import pytest

from repro.core.conversion import (
    CallableConversion,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)

INF = math.inf

ALL_MODELS = [
    FullConversion(1.0),
    FixedCostConversion(0.25),
    NoConversion(),
    RangeLimitedConversion(1, cost_per_step=0.5),
    MatrixConversion({(0, 1): 0.7}),
    CallableConversion(lambda p, q: abs(p - q) * 0.1),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestSharedInvariants:
    def test_identity_is_free(self, model):
        for lam in range(4):
            assert model.cost(lam, lam) == 0.0

    def test_supports_iff_finite(self, model):
        for p in range(3):
            for q in range(3):
                assert model.supports(p, q) == (model.cost(p, q) < INF)

    def test_finite_pairs_matches_cost(self, model):
        ins, outs = [0, 1, 2], [0, 1, 2]
        enumerated = {(p, q): c for p, q, c in model.finite_pairs(ins, outs)}
        for p in ins:
            for q in outs:
                expected = model.cost(p, q)
                if expected < INF:
                    assert enumerated[(p, q)] == pytest.approx(expected)
                else:
                    assert (p, q) not in enumerated

    def test_max_finite_cost_is_max(self, model):
        ws = [0, 1, 2]
        expected = max(
            (model.cost(p, q) for p in ws for q in ws if model.cost(p, q) < INF),
            default=0.0,
        )
        assert model.max_finite_cost(ws) == pytest.approx(expected)


class TestFullConversion:
    def test_flat_cost(self):
        model = FullConversion(2.5)
        assert model.cost(0, 3) == 2.5

    def test_callable_cost(self):
        model = FullConversion(lambda p, q: p + q)
        assert model.cost(1, 2) == 3.0

    def test_rejects_negative_flat(self):
        with pytest.raises(ValueError):
            FullConversion(-1.0)

    def test_callable_returning_negative_raises_on_use(self):
        model = FullConversion(lambda p, q: -1.0)
        with pytest.raises(ValueError):
            model.cost(0, 1)


class TestNoConversion:
    def test_distinct_is_infinite(self):
        model = NoConversion()
        assert model.cost(0, 1) == INF

    def test_finite_pairs_only_diagonal(self):
        model = NoConversion()
        pairs = list(model.finite_pairs([0, 1, 2], [1, 2, 3]))
        assert pairs == [(1, 1, 0.0), (2, 2, 0.0)]

    def test_max_finite_cost_zero(self):
        assert NoConversion().max_finite_cost([0, 1, 2]) == 0.0


class TestRangeLimited:
    def test_within_range(self):
        model = RangeLimitedConversion(2, cost_per_step=0.5)
        assert model.cost(0, 2) == 1.0
        assert model.cost(2, 0) == 1.0

    def test_outside_range(self):
        model = RangeLimitedConversion(2)
        assert model.cost(0, 3) == INF

    def test_zero_range_is_no_conversion(self):
        model = RangeLimitedConversion(0)
        assert model.cost(0, 1) == INF
        assert model.cost(1, 1) == 0.0

    def test_rejects_negative_range(self):
        with pytest.raises(ValueError):
            RangeLimitedConversion(-1)


class TestMatrixConversion:
    def test_listed_pair(self):
        model = MatrixConversion({(0, 1): 0.7, (1, 0): 0.9})
        assert model.cost(0, 1) == 0.7
        assert model.cost(1, 0) == 0.9

    def test_unlisted_pair_infinite(self):
        model = MatrixConversion({(0, 1): 0.7})
        assert model.cost(1, 2) == INF

    def test_asymmetry_supported(self):
        model = MatrixConversion({(0, 1): 0.5})
        assert model.supports(0, 1)
        assert not model.supports(1, 0)

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError):
            MatrixConversion({(2, 2): 1.0})

    def test_zero_diagonal_tolerated(self):
        model = MatrixConversion({(1, 1): 0.0, (0, 1): 0.3})
        assert model.cost(1, 1) == 0.0

    def test_infinite_entries_dropped(self):
        model = MatrixConversion({(0, 1): INF})
        assert not model.supports(0, 1)

    def test_pairs_enumeration(self):
        model = MatrixConversion({(0, 1): 0.5, (2, 0): 0.25})
        assert sorted(model.pairs()) == [(0, 1, 0.5), (2, 0, 0.25)]

    def test_finite_pairs_includes_free_diagonal(self):
        model = MatrixConversion({(0, 1): 0.5})
        pairs = set(model.finite_pairs([0, 1], [1]))
        assert (1, 1, 0.0) in pairs
        assert (0, 1, 0.5) in pairs


class TestCallableConversion:
    def test_wraps_function(self):
        model = CallableConversion(lambda p, q: 0.1 * abs(p - q))
        assert model.cost(0, 3) == pytest.approx(0.3)

    def test_never_consulted_for_identity(self):
        def explode(p, q):
            raise AssertionError("must not be called for p == q")

        assert CallableConversion(explode).cost(2, 2) == 0.0

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            CallableConversion(42)

    def test_negative_result_raises(self):
        model = CallableConversion(lambda p, q: -5.0)
        with pytest.raises(ValueError):
            model.cost(0, 1)

    def test_infinite_result_means_unsupported(self):
        model = CallableConversion(lambda p, q: INF)
        assert not model.supports(0, 1)
