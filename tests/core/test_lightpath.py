"""Unit tests for the pure-lightpath router."""

import pytest

from repro.core.bounded import BoundedConversionRouter
from repro.core.conversion import NoConversion
from repro.core.lightpath import LightpathRouter
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError


class TestBasics:
    def test_paper_example(self, paper_net):
        result = LightpathRouter(paper_net).route(1, 7)
        assert result.path.is_lightpath
        assert result.cost == pytest.approx(2.0)

    def test_conversion_required_pair_unroutable(self, paper_net):
        # 1 -> 6 needs a conversion (Λ(4,5) = {λ3} only).
        with pytest.raises(NoPathError):
            LightpathRouter(paper_net).route(1, 6)

    def test_same_endpoints_rejected(self, paper_net):
        with pytest.raises(ValueError):
            LightpathRouter(paper_net).route(1, 1)

    def test_per_wavelength_landscape(self, paper_net):
        best = LightpathRouter(paper_net).route_per_wavelength(1, 7)
        assert set(best) == {0, 1, 2, 3}
        # λ1 carries 1->2->7 at cost 2.
        assert best[0] is not None
        assert best[0].total_cost == pytest.approx(2.0)
        costs = [p.total_cost for p in best.values() if p is not None]
        assert min(costs) == pytest.approx(2.0)

    def test_per_wavelength_disconnection_is_none(self):
        net = WDMNetwork(num_wavelengths=2)
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 1.0})
        best = LightpathRouter(net).route_per_wavelength("a", "b")
        assert best[0] is not None
        assert best[1] is None


class TestEquivalences:
    @pytest.mark.parametrize("trial", range(15))
    def test_matches_liang_shen_on_no_conversion_networks(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(7100 + trial)
        for node in net.nodes():
            net.set_conversion(node, NoConversion())
        nodes = net.nodes()
        try:
            expected = LiangShenRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            expected = None
        try:
            actual = LightpathRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            actual = None
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)

    @pytest.mark.parametrize("trial", range(15))
    def test_matches_bounded_router_with_zero_budget(self, trial):
        """On ANY network, lightpath optimum == optimum with 0 conversions."""
        from tests.conftest import make_random_net

        net = make_random_net(7300 + trial)
        nodes = net.nodes()
        try:
            expected = (
                BoundedConversionRouter(net)
                .route(nodes[0], nodes[-1], max_conversions=0)
                .cost
            )
        except NoPathError:
            expected = None
        try:
            actual = LightpathRouter(net).route(nodes[0], nodes[-1]).cost
        except NoPathError:
            actual = None
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)

    def test_paths_validate(self, paper_net):
        result = LightpathRouter(paper_net).route(5, 7)
        result.path.validate(paper_net)
