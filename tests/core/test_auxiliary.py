"""Unit tests for the auxiliary graph constructions (G_M, G_v, G', G_{s,t})."""

import pytest

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    KIND_SINK,
    KIND_SOURCE,
    build_all_pairs_graph,
    build_layered_graph,
    build_routing_graph,
    multigraph_edges,
)
from repro.core.conversion import NoConversion
from repro.core.network import WDMNetwork
from repro.exceptions import UnknownNodeError


class TestMultigraph:
    def test_one_edge_per_wavelength(self, tiny_net):
        edges = list(multigraph_edges(tiny_net))
        assert ("a", "b", 0, 1.0) in edges
        assert ("b", "c", 1, 1.0) in edges
        assert ("a", "c", 0, 4.0) in edges
        assert len(edges) == tiny_net.total_link_wavelengths == 3

    def test_paper_m1(self, paper_net):
        assert len(list(multigraph_edges(paper_net))) == 24


class TestLayeredGraph:
    def test_node_sets_follow_lambda_in_out(self, tiny_net):
        lay = build_layered_graph(tiny_net)
        kinds = {}
        for descriptor in lay.decode:
            kinds.setdefault((descriptor.kind, descriptor.node), set()).add(
                descriptor.wavelength
            )
        assert kinds[(KIND_OUT, "a")] == set(tiny_net.lambda_out("a"))
        assert kinds[(KIND_IN, "b")] == set(tiny_net.lambda_in("b"))
        assert kinds[(KIND_IN, "c")] == set(tiny_net.lambda_in("c"))
        # 'a' has no in-links, so no X_a nodes.
        assert (KIND_IN, "a") not in kinds

    def test_e_org_preserves_wavelength_and_weight(self, tiny_net):
        lay = build_layered_graph(tiny_net)
        org_edges = []
        for tail, head, weight, _tag in lay.graph.edges():
            a, b = lay.decode[tail], lay.decode[head]
            if a.kind == KIND_OUT and b.kind == KIND_IN:
                org_edges.append((a.node, b.node, a.wavelength, weight))
                assert a.wavelength == b.wavelength
        assert sorted(org_edges) == sorted(multigraph_edges(tiny_net))

    def test_conversion_edges_within_node(self, tiny_net):
        lay = build_layered_graph(tiny_net)
        for tail, head, weight, _tag in lay.graph.edges():
            a, b = lay.decode[tail], lay.decode[head]
            if a.kind == KIND_IN and b.kind == KIND_OUT:
                assert a.node == b.node
                expected = tiny_net.conversion_cost(
                    a.node, a.wavelength, b.wavelength
                )
                assert weight == pytest.approx(expected)

    def test_no_conversion_model_only_diagonal(self):
        net = WDMNetwork(num_wavelengths=2, default_conversion=NoConversion())
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0, 1: 1.0})
        net.add_link("b", "c", {0: 1.0, 1: 1.0})
        lay = build_layered_graph(net)
        conv = [
            (lay.decode[t], lay.decode[h])
            for t, h, _w, _tag in lay.graph.edges()
            if lay.decode[t].kind == KIND_IN
        ]
        assert all(a.wavelength == b.wavelength for a, b in conv)

    def test_sizes_match_graph(self, paper_net):
        lay = build_layered_graph(paper_net)
        assert lay.sizes.num_layer_nodes == lay.graph.num_nodes
        assert lay.sizes.num_layer_edges == lay.graph.num_edges
        assert (
            lay.sizes.num_org_edges + lay.sizes.num_conversion_edges
            == lay.graph.num_edges
        )

    def test_bipartite_nodes_accessor(self, paper_net):
        lay = build_layered_graph(paper_net)
        xs, ys = lay.bipartite_nodes(3)
        assert [lay.decode[x].wavelength for x in xs] == sorted(
            paper_net.lambda_in(3)
        )
        assert [lay.decode[y].wavelength for y in ys] == sorted(
            paper_net.lambda_out(3)
        )


class TestRoutingGraph:
    def test_virtual_terminals(self, tiny_net):
        aux = build_routing_graph(tiny_net, "a", "c")
        assert aux.decode[aux.source_id].kind == KIND_SOURCE
        assert aux.decode[aux.sink_id].kind == KIND_SINK
        # s' fans out to every Y_s node with weight 0.
        fan_out = list(aux.graph.neighbors(aux.source_id))
        assert all(w == 0.0 for _h, w, _t in fan_out)
        assert {aux.decode[h].wavelength for h, _w, _t in fan_out} == set(
            tiny_net.lambda_out("a")
        )

    def test_sink_fan_in(self, tiny_net):
        aux = build_routing_graph(tiny_net, "a", "c")
        into_sink = [
            (t, w)
            for t, h, w, _tag in aux.graph.edges()
            if h == aux.sink_id
        ]
        assert all(w == 0.0 for _t, w in into_sink)
        assert {aux.decode[t].wavelength for t, _w in into_sink} == set(
            tiny_net.lambda_in("c")
        )

    def test_same_endpoints_rejected(self, tiny_net):
        with pytest.raises(ValueError):
            build_routing_graph(tiny_net, "a", "a")

    def test_unknown_endpoint_rejected(self, tiny_net):
        with pytest.raises(UnknownNodeError):
            build_routing_graph(tiny_net, "a", "zzz")

    def test_size_bounds_paper(self, paper_net):
        aux = build_routing_graph(paper_net, 1, 7)
        n, k, m = 7, 4, 11
        assert aux.graph.num_nodes <= 2 * k * n + 2
        assert aux.graph.num_edges <= k * k * n + 2 * k + k * m


class TestAllPairsGraph:
    def test_terminals_for_every_node(self, tiny_net):
        aux = build_all_pairs_graph(tiny_net)
        assert set(aux.source_ids) == set(tiny_net.nodes())
        assert set(aux.sink_ids) == set(tiny_net.nodes())

    def test_terminal_edges_zero_weight(self, tiny_net):
        aux = build_all_pairs_graph(tiny_net)
        for v, source_id in aux.source_ids.items():
            for head, weight, _tag in aux.graph.neighbors(source_id):
                assert weight == 0.0
                assert aux.decode[head] == aux.decode[head]._replace(
                    kind=KIND_OUT, node=v
                )

    def test_terminals_have_no_shortcuts(self, tiny_net):
        """v' has no in-edges and v'' no out-edges, so terminals never
        appear in the middle of a shortest path."""
        aux = build_all_pairs_graph(tiny_net)
        sink_ids = set(aux.sink_ids.values())
        for sink_id in sink_ids:
            assert aux.graph.out_degree(sink_id) == 0
        source_ids = set(aux.source_ids.values())
        heads_with_in_edges = {h for _t, h, _w, _tag in aux.graph.edges()}
        assert not (source_ids & heads_with_in_edges)

    def test_corollary1_size_bounds(self, paper_net):
        aux = build_all_pairs_graph(paper_net)
        n, k, m = 7, 4, 11
        assert aux.graph.num_nodes <= 2 * n * (k + 1)
        assert aux.graph.num_edges <= k * k * n + k * m + 2 * k * n


class TestObservationBounds:
    def test_paper_example_within_all_bounds(self, paper_net):
        sizes = build_layered_graph(paper_net).sizes
        assert sizes.within_bounds()

    def test_paper_figure1_exceeds_uncorrected_observation5(self, paper_net):
        """Documents the factor-2 slip in the paper's Observation 5: the
        paper's own example violates |V'| <= m*k0."""
        sizes = build_layered_graph(paper_net).sizes
        assert sizes.num_layer_nodes > sizes.m * sizes.k0
        assert sizes.num_layer_nodes <= 2 * sizes.m * sizes.k0
