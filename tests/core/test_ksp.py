"""Unit tests for K-shortest semilightpath enumeration."""

import pytest

from repro.core.conversion import FixedCostConversion
from repro.core.ksp import k_shortest_semilightpaths
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError


def diamond_net() -> WDMNetwork:
    """Two disjoint physical routes with distinct costs plus per-route
    wavelength choices."""
    net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.5))
    for node in "sabt":
        net.add_node(node)
    net.add_link("s", "a", {0: 1.0})
    net.add_link("a", "t", {0: 1.0})
    net.add_link("s", "b", {0: 2.0})
    net.add_link("b", "t", {0: 2.0})
    return net


class TestBasics:
    def test_k1_matches_router(self, paper_net):
        best = k_shortest_semilightpaths(paper_net, 1, 7, k=1)
        assert len(best) == 1
        assert best[0].total_cost == pytest.approx(
            LiangShenRouter(paper_net).route(1, 7).cost
        )

    def test_costs_ascending(self, paper_net):
        paths = k_shortest_semilightpaths(paper_net, 1, 7, k=5)
        costs = [p.total_cost for p in paths]
        assert costs == sorted(costs)

    def test_paths_distinct(self, paper_net):
        paths = k_shortest_semilightpaths(paper_net, 1, 7, k=6)
        assert len({p.hops for p in paths}) == len(paths)

    def test_paths_validate(self, paper_net):
        for path in k_shortest_semilightpaths(paper_net, 1, 6, k=4):
            path.validate(paper_net)

    def test_diamond_ranking(self):
        net = diamond_net()
        paths = k_shortest_semilightpaths(net, "s", "t", k=3)
        assert len(paths) == 2  # only two distinct routes exist
        assert paths[0].nodes() == ["s", "a", "t"]
        assert paths[0].total_cost == pytest.approx(2.0)
        assert paths[1].nodes() == ["s", "b", "t"]
        assert paths[1].total_cost == pytest.approx(4.0)

    def test_wavelength_alternatives_enumerated(self):
        """Same physical route, different wavelengths = distinct paths."""
        net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.5))
        net.add_nodes(["s", "t"])
        net.add_link("s", "t", {0: 1.0, 1: 3.0})
        paths = k_shortest_semilightpaths(net, "s", "t", k=5)
        assert len(paths) == 2
        assert paths[0].wavelengths() == [0]
        assert paths[1].wavelengths() == [1]

    def test_no_path_raises(self):
        net = WDMNetwork(1)
        net.add_nodes(["s", "t"])
        with pytest.raises(NoPathError):
            k_shortest_semilightpaths(net, "s", "t", k=2)

    def test_invalid_k(self, paper_net):
        with pytest.raises(ValueError):
            k_shortest_semilightpaths(paper_net, 1, 7, k=0)


class TestAgainstExhaustiveEnumeration:
    def _all_simple_semilightpaths(self, net, source, target):
        """Enumerate all node-simple semilightpaths by DFS (tiny nets only)."""
        results = []

        def extend(node, visited, hops, wavelengths):
            if node == target and hops:
                from repro.core.semilightpath import Semilightpath

                path = Semilightpath.from_sequence(
                    [h[0] for h in hops] + [node], wavelengths, net
                )
                results.append(path)
                return
            for link in net.out_links(node):
                if link.head in visited:
                    continue
                for w in sorted(link.costs):
                    if wavelengths:
                        conv = net.conversion_cost(node, wavelengths[-1], w)
                        if conv == float("inf"):
                            continue
                    extend(
                        link.head,
                        visited | {link.head},
                        hops + [(node, link.head)],
                        wavelengths + [w],
                    )

        extend(source, {source}, [], [])
        return sorted(results, key=lambda p: p.total_cost)

    def test_matches_exhaustive_on_diamond(self):
        net = diamond_net()
        exhaustive = self._all_simple_semilightpaths(net, "s", "t")
        yen = k_shortest_semilightpaths(net, "s", "t", k=len(exhaustive))
        assert [p.total_cost for p in yen] == pytest.approx(
            [p.total_cost for p in exhaustive]
        )

    def test_top3_costs_match_exhaustive_paper_example(self, paper_net):
        exhaustive = self._all_simple_semilightpaths(paper_net, 1, 7)
        yen = k_shortest_semilightpaths(paper_net, 1, 7, k=3)
        # Yen also admits node-revisiting walks, so its costs can only be
        # <= the simple-path enumeration at each rank.
        for rank in range(3):
            assert yen[rank].total_cost <= exhaustive[rank].total_cost + 1e-9
        assert yen[0].total_cost == pytest.approx(exhaustive[0].total_cost)
