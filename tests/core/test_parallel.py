"""Tests for process-parallel all-pairs routing."""

import pytest

from repro.core.network import WDMNetwork
from repro.core.parallel import _chunk, route_all_pairs_parallel
from repro.core.routing import LiangShenRouter
from repro.topology.generators import waxman_network
from repro.topology.reference import paper_figure1_network


def _as_comparable(result):
    """Paths (by hop tuples and cost) plus stats, for equality checks."""
    return (
        {pair: (path.hops, path.total_cost) for pair, path in result.paths.items()},
        result.stats.settled,
        result.stats.relaxations,
        dict(result.stats.heap),
        result.stats.sizes,
    )


class TestChunking:
    def test_partition_is_contiguous_and_complete(self):
        sources = list(range(10))
        chunks = _chunk(sources, 3)
        assert [x for chunk in chunks for x in chunk] == sources
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_sources(self):
        chunks = _chunk([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_at_least_one_chunk(self):
        assert _chunk([1], 0) == [[1]]


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_identical_to_serial_route_all_pairs(self, workers):
        net = paper_figure1_network()
        serial = LiangShenRouter(net).route_all_pairs()
        parallel = route_all_pairs_parallel(net, workers=workers)
        assert _as_comparable(parallel) == _as_comparable(serial)
        # Same insertion order too: merge happens in source-chunk order.
        assert list(parallel.paths) == list(serial.paths)

    def test_router_entry_point_dispatches(self):
        net = waxman_network(12, 3, seed=9)
        router = LiangShenRouter(net)
        serial = router.route_all_pairs(workers=1)
        fanned = router.route_all_pairs(workers=2)
        assert _as_comparable(fanned) == _as_comparable(serial)

    def test_binary_heap_kernel_in_workers(self):
        net = paper_figure1_network()
        flat = route_all_pairs_parallel(net, workers=2, heap="flat")
        binary = route_all_pairs_parallel(net, workers=2, heap="binary")
        assert {p: path.hops for p, path in flat.paths.items()} == {
            p: path.hops for p, path in binary.paths.items()
        }

    def test_prebuilt_aux_is_reused(self):
        net = paper_figure1_network()
        router = LiangShenRouter(net)
        aux = router.all_pairs_graph()
        result = route_all_pairs_parallel(net, workers=1, aux=aux)
        assert result.stats.sizes == aux.sizes


class TestEdgeCases:
    def test_single_worker_skips_the_pool(self):
        # workers=1 must answer in-process (no executor), yet through the
        # same merge path as the fanned run.
        net = paper_figure1_network()
        result = route_all_pairs_parallel(net, workers=1)
        assert _as_comparable(result) == _as_comparable(
            LiangShenRouter(net).route_all_pairs()
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_empty_network(self, workers):
        net = WDMNetwork(num_wavelengths=2)
        result = route_all_pairs_parallel(net, workers=workers)
        assert result.paths == {}
        assert result.stats.settled == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_node_network(self, workers):
        net = WDMNetwork(num_wavelengths=2)
        net.add_node("solo")
        result = route_all_pairs_parallel(net, workers=workers)
        assert result.paths == {}

    @pytest.mark.parametrize("heap", ["binary", "pairing", "fibonacci"])
    def test_non_flat_kernels_single_worker(self, heap):
        net = paper_figure1_network()
        result = route_all_pairs_parallel(net, workers=1, heap=heap)
        assert _as_comparable(result)[0] == _as_comparable(
            LiangShenRouter(net).route_all_pairs()
        )[0]

    def test_worker_failure_propagates_instead_of_hanging(self):
        # An unknown heap name is only resolved inside the worker (run_tree
        # dispatch), so the raise happens mid-chunk in a child process.  The
        # pool must surface it to the caller and release its workers.
        with pytest.raises(ValueError, match="bogus"):
            route_all_pairs_parallel(
                paper_figure1_network(), workers=2, heap="bogus"
            )
        # The shared-state global must not leak after the failure.
        from repro.core.parallel import _SHARED

        assert _SHARED == {}


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            route_all_pairs_parallel(paper_figure1_network(), workers=0)

    def test_heap_factory_rejected(self):
        from repro.shortestpath.heaps import BinaryHeap

        with pytest.raises(TypeError):
            route_all_pairs_parallel(
                paper_figure1_network(), workers=2, heap=BinaryHeap
            )


class TestSharedMemoryPath:
    """The zero-copy pool path (``shared=True``, the default) vs legacy."""

    def test_shared_and_pickled_paths_both_match_serial(self):
        net = paper_figure1_network()
        serial = LiangShenRouter(net).route_all_pairs()
        via_shared = route_all_pairs_parallel(net, workers=2, shared=True)
        via_pickle = route_all_pairs_parallel(net, workers=2, shared=False)
        assert _as_comparable(via_shared) == _as_comparable(serial)
        assert _as_comparable(via_pickle) == _as_comparable(serial)
        assert list(via_shared.paths) == list(serial.paths)
        assert list(via_pickle.paths) == list(serial.paths)

    def test_no_segment_outlives_the_run(self):
        from repro.shortestpath.shared import leaked_segments

        before = set(leaked_segments())
        route_all_pairs_parallel(paper_figure1_network(), workers=2, shared=True)
        assert set(leaked_segments()) - before == set()

    def test_segment_reaped_even_when_a_worker_raises(self):
        from repro.shortestpath.shared import leaked_segments

        before = set(leaked_segments())
        with pytest.raises(ValueError, match="bogus"):
            route_all_pairs_parallel(
                paper_figure1_network(), workers=2, heap="bogus", shared=True
            )
        assert set(leaked_segments()) - before == set()

    def test_share_failure_falls_back_to_pickled_path(self, monkeypatch):
        import repro.shortestpath.shared as shared_mod

        def explode(aux):
            raise OSError("no shm for you")

        monkeypatch.setattr(shared_mod, "share_all_pairs_graph", explode)
        net = paper_figure1_network()
        result = route_all_pairs_parallel(net, workers=2, shared=True)
        assert _as_comparable(result) == _as_comparable(
            LiangShenRouter(net).route_all_pairs()
        )
