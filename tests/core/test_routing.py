"""Unit tests for the LiangShenRouter (Theorem 1, Corollary 1)."""

import math

import pytest

from repro.core.conversion import NoConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError


class TestSinglePair:
    def test_tiny_optimum(self, tiny_net):
        result = LiangShenRouter(tiny_net).route("a", "c")
        assert result.cost == pytest.approx(2.5)
        assert result.path.nodes() == ["a", "b", "c"]
        assert result.path.wavelengths() == [0, 1]

    def test_direct_wins_when_conversion_expensive(self, tiny_net):
        # Make conversion at b cost 5: a-b-c costs 7, direct a-c costs 4.
        from repro.core.conversion import FixedCostConversion

        tiny_net.set_conversion("b", FixedCostConversion(5.0))
        result = LiangShenRouter(tiny_net).route("a", "c")
        assert result.cost == pytest.approx(4.0)
        assert result.path.nodes() == ["a", "c"]

    def test_path_is_valid_and_priced_correctly(self, paper_net):
        router = LiangShenRouter(paper_net)
        result = router.route(1, 7)
        result.path.validate(paper_net)
        assert result.path.source == 1
        assert result.path.target == 7

    def test_no_path_raises(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["a", "b"])
        with pytest.raises(NoPathError):
            LiangShenRouter(net).route("a", "b")

    def test_dark_link_is_unusable(self):
        net = WDMNetwork(num_wavelengths=2)
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {})  # no wavelengths
        with pytest.raises(NoPathError):
            LiangShenRouter(net).route("a", "b")

    def test_wavelength_continuity_blocks_without_conversion(self):
        net = WDMNetwork(num_wavelengths=2, default_conversion=NoConversion())
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        net.add_link("b", "c", {1: 1.0})  # different wavelength, no converter
        with pytest.raises(NoPathError):
            LiangShenRouter(net).route("a", "c")

    def test_lightpath_found_when_continuous(self):
        net = WDMNetwork(num_wavelengths=2, default_conversion=NoConversion())
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0, 1: 5.0})
        net.add_link("b", "c", {1: 1.0})
        result = LiangShenRouter(net).route("a", "c")
        assert result.path.is_lightpath
        assert result.path.wavelengths() == [1, 1]
        assert result.cost == pytest.approx(6.0)

    def test_same_endpoints_rejected(self, tiny_net):
        with pytest.raises(ValueError):
            LiangShenRouter(tiny_net).route("a", "a")

    @pytest.mark.parametrize("heap", ["binary", "pairing", "fibonacci"])
    def test_heap_choice_same_answer(self, paper_net, heap):
        result = LiangShenRouter(paper_net, heap=heap).route(1, 7)
        assert result.cost == pytest.approx(2.0)

    def test_stats_populated(self, paper_net):
        result = LiangShenRouter(paper_net).route(1, 7)
        assert result.stats.settled > 0
        assert result.stats.relaxations > 0
        assert result.stats.sizes.within_bounds()
        assert result.stats.total_heap_ops > 0


class TestWavelengthChoice:
    def test_picks_cheaper_wavelength_on_same_link(self):
        net = WDMNetwork(num_wavelengths=2)
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 9.0, 1: 2.0})
        result = LiangShenRouter(net).route("a", "b")
        assert result.path.wavelengths() == [1]
        assert result.cost == pytest.approx(2.0)

    def test_conversion_vs_expensive_continuation(self):
        # Staying on λ1 costs 10 on the second link; converting to λ2 (0.1)
        # and paying 1 is better.
        from repro.core.conversion import FixedCostConversion

        net = WDMNetwork(
            num_wavelengths=2, default_conversion=FixedCostConversion(0.1)
        )
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        net.add_link("b", "c", {0: 10.0, 1: 1.0})
        result = LiangShenRouter(net).route("a", "c")
        assert result.path.wavelengths() == [0, 1]
        assert result.cost == pytest.approx(2.1)


class TestRouteTree:
    def test_tree_matches_single_pair(self, paper_net):
        router = LiangShenRouter(paper_net)
        tree = router.route_tree(1)
        for target, path in tree.items():
            single = router.route(1, target)
            assert path.total_cost == pytest.approx(single.cost)
            path.validate(paper_net)

    def test_tree_excludes_source(self, paper_net):
        tree = LiangShenRouter(paper_net).route_tree(1)
        assert 1 not in tree

    def test_tree_omits_unreachable(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        tree = LiangShenRouter(net).route_tree("a")
        assert set(tree) == {"b"}


class TestAllPairs:
    def test_matches_pairwise_routing(self, paper_net):
        router = LiangShenRouter(paper_net)
        result = router.route_all_pairs()
        for s in paper_net.nodes():
            for t in paper_net.nodes():
                if s == t:
                    continue
                try:
                    expected = router.route(s, t).cost
                except NoPathError:
                    expected = math.inf
                assert result.cost(s, t) == pytest.approx(expected)

    def test_paths_validate(self, paper_net):
        result = LiangShenRouter(paper_net).route_all_pairs()
        for path in result.paths.values():
            path.validate(paper_net)

    def test_unreachable_pairs_absent(self, paper_net):
        result = LiangShenRouter(paper_net).route_all_pairs()
        # Node 7 has no out-links in the paper example.
        assert all(s != 7 for (s, _t) in result.paths)
        assert result.cost(7, 1) == math.inf

    def test_aggregate_stats(self, paper_net):
        result = LiangShenRouter(paper_net).route_all_pairs()
        assert result.stats.settled > 0
        assert result.stats.relaxations > 0
