"""Query engine: backpressure, deadlines, coalescing, concurrency."""

import threading
import time

import pytest

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    DeadlineExpiredError,
    NoPathError,
    ServiceClosedError,
    ServiceOverloadError,
    TransientBackendError,
)
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.service.cache import EpochRouterCache
from repro.service.engine import QueryEngine
from repro.service.metrics import MetricsRegistry


def sync_engine(net, **kwargs):
    """An engine with no workers: drained explicitly via run_pending()."""
    kwargs.setdefault("workers", 0)
    return QueryEngine(EpochRouterCache(net), **kwargs)


class TestSynchronousMode:
    def test_route_drains_inline(self, paper_net):
        engine = sync_engine(paper_net)
        assert engine.route(1, 7).total_cost == 2.0

    def test_run_pending_serves_all(self, paper_net):
        engine = sync_engine(paper_net)
        futures = [engine.submit(1, 7), engine.submit(2, 7), engine.submit(1, 6)]
        assert engine.queue_depth == 3
        assert engine.run_pending() == 3
        assert engine.queue_depth == 0
        assert all(f.done() for f in futures)
        assert futures[0].result().total_cost == 2.0

    def test_no_path_propagates(self, paper_net):
        engine = sync_engine(paper_net)
        future = engine.submit(7, 1)
        engine.run_pending()
        with pytest.raises(NoPathError):
            future.result()


class TestBackpressure:
    def test_overload_rejection(self, paper_net):
        engine = sync_engine(paper_net, queue_limit=3)
        for _ in range(3):
            engine.submit(1, 7)
        with pytest.raises(ServiceOverloadError) as excinfo:
            engine.submit(1, 7)
        assert excinfo.value.queue_limit == 3
        # Draining frees capacity again.
        engine.run_pending()
        engine.submit(1, 7)

    def test_rejected_counter(self, paper_net):
        registry = MetricsRegistry()
        engine = QueryEngine(
            EpochRouterCache(paper_net), workers=0, queue_limit=1, metrics=registry
        )
        engine.submit(1, 7)
        with pytest.raises(ServiceOverloadError):
            engine.submit(1, 6)
        assert registry.snapshot()["engine.rejected"] == 1
        assert registry.snapshot()["engine.submitted"] == 1

    def test_invalid_limits(self, paper_net):
        cache = EpochRouterCache(paper_net)
        with pytest.raises(ValueError):
            QueryEngine(cache, workers=-1)
        with pytest.raises(ValueError):
            QueryEngine(cache, queue_limit=0)


class TestDeadlines:
    def test_expired_while_queued(self, paper_net):
        engine = sync_engine(paper_net)
        future = engine.submit(1, 7, timeout=0.0)
        time.sleep(0.01)
        engine.run_pending()
        with pytest.raises(DeadlineExpiredError) as excinfo:
            future.result()
        assert excinfo.value.source == 1

    def test_unexpired_deadline_served(self, paper_net):
        engine = sync_engine(paper_net)
        future = engine.submit(1, 7, timeout=60.0)
        engine.run_pending()
        assert future.result().total_cost == 2.0

    def test_expired_counter(self, paper_net):
        registry = MetricsRegistry()
        engine = QueryEngine(
            EpochRouterCache(paper_net), workers=0, metrics=registry
        )
        engine.submit(1, 7, timeout=0.0)
        time.sleep(0.01)
        engine.run_pending()
        assert registry.snapshot()["engine.expired"] == 1
        assert registry.snapshot()["engine.deadline_exceeded"] == 1

    def test_deadline_error_is_typed_with_elapsed(self, paper_net):
        engine = sync_engine(paper_net)
        future = engine.submit(1, 7, timeout=0.0)
        time.sleep(0.01)
        engine.run_pending()
        with pytest.raises(DeadlineExceeded) as excinfo:
            future.result()
        error = excinfo.value
        assert error.source == 1 and error.target == 7
        assert error.elapsed is not None and error.elapsed > 0.0
        assert "after" in str(error)

    def test_legacy_alias_is_the_same_class(self):
        assert DeadlineExpiredError is DeadlineExceeded


class TestCoalescing:
    def test_same_source_batch_counted(self, paper_net):
        registry = MetricsRegistry()
        engine = QueryEngine(
            EpochRouterCache(paper_net), workers=0, metrics=registry
        )
        futures = [engine.submit(1, t) for t in (6, 7, 2, 3)]
        engine.submit(2, 7)
        engine.run_pending()
        snap = registry.snapshot()
        assert snap["engine.coalesced"] == 3  # three riders behind the first
        assert all(f.done() for f in futures)

    def test_coalescing_preserves_results(self, paper_net):
        engine = sync_engine(paper_net)
        single = EpochRouterCache(paper_net)
        futures = {t: engine.submit(1, t) for t in (2, 3, 6, 7)}
        engine.run_pending()
        for target, future in futures.items():
            assert future.result() == single.route(1, target)

    def test_disabled_coalescing(self, paper_net):
        registry = MetricsRegistry()
        engine = QueryEngine(
            EpochRouterCache(paper_net), workers=0, coalesce=False, metrics=registry
        )
        engine.submit(1, 7)
        engine.submit(1, 6)
        engine.run_pending()
        assert "engine.coalesced" not in registry.snapshot()


class TestWorkerPool:
    def test_concurrent_determinism(self, paper_net):
        """Many threads, shared cache: every answer equals the serial one."""
        serial = EpochRouterCache(paper_net)
        expected = {}
        nodes = paper_net.nodes()
        for s in nodes:
            for t in nodes:
                if s == t:
                    continue
                try:
                    expected[(s, t)] = serial.route(s, t)
                except NoPathError:
                    expected[(s, t)] = None

        with QueryEngine(EpochRouterCache(paper_net), workers=4) as engine:
            errors = []

            def hammer(offset):
                pairs = list(expected)
                for i in range(len(pairs) * 3):
                    s, t = pairs[(i + offset) % len(pairs)]
                    try:
                        got = engine.route(s, t, timeout=30.0)
                    except NoPathError:
                        got = None
                    if got != expected[(s, t)]:
                        errors.append((s, t, got))

            threads = [
                threading.Thread(target=hammer, args=(i * 5,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors

    def test_shutdown_rejects_new_work(self, paper_net):
        engine = QueryEngine(EpochRouterCache(paper_net), workers=2)
        assert engine.route(1, 7, timeout=30.0).total_cost == 2.0
        engine.shutdown()
        with pytest.raises(ServiceClosedError):
            engine.submit(1, 7)

    def test_shutdown_idempotent(self, paper_net):
        engine = QueryEngine(EpochRouterCache(paper_net), workers=1)
        engine.shutdown()
        engine.shutdown()


class TestResilienceWiring:
    def test_retry_absorbs_transient_faults(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(
            paper_net,
            metrics=registry,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, sleep=lambda _: None),
        )
        faults = [TransientBackendError("flake"), TransientBackendError("flake")]

        def hook():
            if faults:
                raise faults.pop()

        engine.fault_hook = hook
        assert engine.route(1, 7).total_cost == 2.0
        snapshot = registry.snapshot()
        assert snapshot["engine.retries"] == 2
        assert snapshot["engine.backend_faults"] == 2

    def test_retry_exhaustion_surfaces_the_fault(self, paper_net):
        engine = sync_engine(
            paper_net,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, sleep=lambda _: None),
        )
        engine.fault_hook = lambda: (_ for _ in ()).throw(
            TransientBackendError("always down")
        )
        with pytest.raises(TransientBackendError):
            engine.route(1, 7)

    def test_open_breaker_fails_fast(self, paper_net):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=60.0, clock=lambda: now[0]
        )
        engine = sync_engine(paper_net, breaker=breaker)
        engine.fault_hook = lambda: (_ for _ in ()).throw(
            TransientBackendError("down")
        )
        with pytest.raises(TransientBackendError):
            engine.route(1, 7)
        assert breaker.state == CircuitBreaker.OPEN
        # The hook is no longer reached: the breaker rejects at admission.
        engine.fault_hook = lambda: pytest.fail("backend must not be called")
        with pytest.raises(CircuitOpenError):
            engine.route(1, 7)

    def test_breaker_closes_after_successful_probe(self, paper_net):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=lambda: now[0]
        )
        engine = sync_engine(paper_net, breaker=breaker)
        faulty = [TransientBackendError("down")]

        def hook():
            if faulty:
                raise faulty.pop()

        engine.fault_hook = hook
        with pytest.raises(TransientBackendError):
            engine.route(1, 7)
        now[0] = 11.0  # past the reset timeout: next call is the probe
        assert engine.route(1, 7).total_cost == 2.0
        assert breaker.state == CircuitBreaker.CLOSED

    def test_no_path_counts_as_backend_success(self, paper_net):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        engine = sync_engine(paper_net, breaker=breaker)
        with pytest.raises(NoPathError):
            engine.route(7, 1)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0
