"""Unit tests for the service metrics primitives."""

import threading

import pytest

from repro.core.batch import BatchRouter
from repro.core.routing import LiangShenRouter
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_running_aggregates(self):
        hist = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.minimum == 1.0
        assert hist.maximum == 4.0

    def test_percentiles(self):
        hist = Histogram()
        for value in range(101):
            hist.observe(float(value))
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 50.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(90) == pytest.approx(90.0)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_window_eviction_keeps_totals_exact(self):
        hist = Histogram(window=4)
        for value in [10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0]:
            hist.observe(value)
        # Totals cover all 8 observations; the window holds only the 1.0s.
        assert hist.count == 8
        assert hist.total == 44.0
        assert hist.maximum == 10.0
        assert hist.percentile(99) == 1.0

    def test_summary_keys(self):
        hist = Histogram()
        hist.observe(3.0)
        summary = hist.summary()
        assert set(summary) == {
            "count", "mean", "min", "max", "p50", "p90", "p99", "p999"
        }
        assert summary["count"] == 1
        assert summary["p50"] == 3.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Histogram(window=0)


class TestExactHistogram:
    """``window=None``: every observation retained, tail quantiles exact."""

    def test_p999_exact_beyond_any_window(self):
        # 10_000 observations — far past the default 2048 window.  A
        # windowed histogram can only see the most recent slice; exact
        # mode must interpolate over the full population.
        hist = Histogram(window=None)
        import random

        values = [float(v) for v in range(10_000)]
        random.Random(7).shuffle(values)
        for value in values:
            hist.observe(value)
        assert hist.count == 10_000
        # rank = 0.999 * 9999 = 9989.001
        assert hist.percentile(99.9) == pytest.approx(9989.001)
        assert hist.percentile(50) == pytest.approx(4999.5)
        assert hist.summary()["p999"] == pytest.approx(9989.001)

    def test_windowed_mode_is_a_window_estimate(self):
        # The contrast that motivates exact mode: with eviction, the
        # early observations are gone from the percentile view.
        hist = Histogram(window=100)
        for value in range(10_000):
            hist.observe(float(value))
        assert hist.percentile(0) == 9900.0

    def test_percentiles_batch_is_consistent(self):
        hist = Histogram(window=None)
        for value in range(1000):
            hist.observe(float(value))
        triple = hist.percentiles([50, 99, 99.9])
        assert triple[50] == hist.percentile(50)
        assert triple[99.9] == pytest.approx(hist.percentile(99.9))
        with pytest.raises(ValueError):
            hist.percentiles([50, 101])

    def test_exact_mode_interleaves_observe_and_query(self):
        hist = Histogram(window=None)
        hist.observe(5.0)
        hist.observe(1.0)
        assert hist.percentile(0) == 1.0  # lazy sort happened
        hist.observe(0.5)  # re-dirties the sorted view
        assert hist.percentile(0) == 0.5
        assert hist.percentile(100) == 5.0

    def test_exact_mode_reset(self):
        hist = Histogram(window=None)
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        hist.reset()
        assert hist.count == 0
        assert hist.percentile(99.9) == 0.0
        hist.observe(4.0)
        assert hist.percentile(50) == 4.0

    def test_registry_exact_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", window=None)
        for value in range(5000):
            hist.observe(float(value))
        assert registry.snapshot()["lat"]["p999"] == pytest.approx(
            0.999 * 4999
        )


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_flat(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(1.5)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 2
        assert snap["lat"]["count"] == 1

    def test_callback_gauges(self):
        registry = MetricsRegistry()
        state = {"value": 7}
        registry.register_callback("live", lambda: state["value"])
        assert registry.snapshot()["live"] == 7
        state["value"] = 9
        assert registry.snapshot()["live"] == 9

    def test_observe_query_aggregates(self, paper_net):
        registry = MetricsRegistry()
        result = LiangShenRouter(paper_net).route(1, 7)
        registry.observe_query(result.stats)
        registry.observe_query(result.stats)
        snap = registry.snapshot()
        assert snap["query.count"] == 2
        assert snap["query.settled"] == 2 * result.stats.settled
        assert snap["query.heap_ops"] == 2 * result.stats.total_heap_ops

    def test_bind_batch_router(self, paper_net):
        registry = MetricsRegistry()
        router = BatchRouter(paper_net)
        registry.bind_batch_router(router)
        router.route(1, 7)
        router.route(1, 6)
        snap = registry.snapshot()
        assert snap["batch.cache_misses"] == 1
        assert snap["batch.cache_hits"] == 1
        assert snap["batch.cached_sources"] == 1
        assert snap["batch.cache_evictions"] == 0

    def test_render_sorted_lines(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.histogram("m").observe(1.0)
        text = registry.render()
        lines = text.splitlines()
        assert lines[0].startswith("a: 2")
        assert lines[-1].startswith("z: 1")
        assert any("count=1" in line for line in lines)


class TestReset:
    def test_counter_reset(self):
        counter = Counter()
        counter.inc(5)
        counter.reset()
        assert counter.value == 0

    def test_gauge_reset(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.reset()
        assert gauge.value == 0.0

    def test_histogram_reset_clears_window_and_totals(self):
        histogram = Histogram(window=4)
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.total == 0.0
        assert histogram.percentile(0.5) == 0.0
        histogram.observe(7.0)  # still usable afterwards
        assert histogram.count == 1
        assert histogram.minimum == 7.0

    def test_histogram_rejects_nan(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.observe(float("nan"))
        assert histogram.count == 0

    def test_registry_reset_keeps_instruments_and_callbacks(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc(9)
        registry.histogram("lat").observe(2.0)
        registry.register_callback("live", lambda: 42.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["hits"] == 0
        assert snap["live"] == 42.0  # callbacks survive a reset
        assert registry.counter("hits") is counter  # identity preserved
        counter.inc()
        assert registry.snapshot()["hits"] == 1
