"""Batched serving: coalesced same-source batches through route_batch."""

import time

import pytest

from repro.exceptions import DeadlineExceeded, NoPathError
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.service.cache import EpochRouterCache
from repro.service.engine import QueryEngine
from repro.service.metrics import MetricsRegistry


def sync_engine(net, **kwargs):
    kwargs.setdefault("workers", 0)
    return QueryEngine(EpochRouterCache(net), **kwargs)


class TestBatchedDispatch:
    def test_batched_counter_covers_whole_batch(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(paper_net, metrics=registry)
        futures = [engine.submit(1, t) for t in (6, 7, 2, 3)]
        engine.run_pending()
        snap = registry.snapshot()
        assert snap["engine.batched"] == 4
        assert snap["engine.served"] == 4
        assert all(f.done() for f in futures)

    def test_results_identical_to_unbatched(self, paper_net):
        engine = sync_engine(paper_net)
        reference = EpochRouterCache(paper_net)
        futures = {t: engine.submit(1, t) for t in (2, 3, 6, 7)}
        engine.run_pending()
        for target, future in futures.items():
            assert future.result() == reference.route(1, target)

    def test_single_request_skips_batch_path(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(paper_net, metrics=registry)
        engine.submit(1, 7)
        engine.run_pending()
        assert "engine.batched" not in registry.snapshot()

    def test_epochs_consistent_across_batch(self, paper_net):
        engine = sync_engine(paper_net)
        futures = [engine.submit(1, t) for t in (6, 7)]
        engine.run_pending()
        del futures
        _, epoch_a = engine.route_with_epoch(1, 6)
        _, epoch_b = engine.route_with_epoch(1, 7)
        assert epoch_a == epoch_b

    def test_no_path_inside_batch(self, paper_net):
        # 7 is a sink in the paper network: both answers are NoPathError.
        engine = sync_engine(paper_net)
        futures = [engine.submit(7, 1), engine.submit(7, 2)]
        engine.run_pending()
        for f in futures:
            with pytest.raises(NoPathError):
                f.result()

    def test_expired_member_fails_alone(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(paper_net, metrics=registry)
        live = engine.submit(1, 7)
        dead = engine.submit(1, 6, timeout=0.0)
        time.sleep(0.01)
        engine.run_pending()
        assert live.result().total_cost == 2.0
        with pytest.raises(DeadlineExceeded):
            dead.result()
        assert registry.snapshot()["engine.expired"] == 1

    def test_mixed_sources_split_into_batches(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(paper_net, metrics=registry)
        engine.submit(1, 7)
        engine.submit(1, 6)
        engine.submit(2, 7)
        engine.run_pending()
        # Only the same-source pair is batched; the third serves alone.
        assert registry.snapshot()["engine.batched"] == 2
        assert registry.snapshot()["engine.served"] == 3


class TestGuardedFallback:
    def test_retry_disables_batching(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(
            paper_net, retry=RetryPolicy(max_attempts=2), metrics=registry
        )
        futures = [engine.submit(1, t) for t in (6, 7)]
        engine.run_pending()
        assert "engine.batched" not in registry.snapshot()
        assert all(f.result().hops for f in futures)

    def test_breaker_disables_batching(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(paper_net, breaker=CircuitBreaker(), metrics=registry)
        futures = [engine.submit(1, t) for t in (6, 7)]
        engine.run_pending()
        assert "engine.batched" not in registry.snapshot()
        assert all(f.result().hops for f in futures)

    def test_coalesce_off_disables_batching(self, paper_net):
        registry = MetricsRegistry()
        engine = sync_engine(paper_net, coalesce=False, metrics=registry)
        futures = [engine.submit(1, t) for t in (6, 7)]
        engine.run_pending()
        assert "engine.batched" not in registry.snapshot()
        assert all(f.result().hops for f in futures)


class TestRouteBatchCache:
    def test_route_batch_matches_single_routes(self, paper_net):
        cache = EpochRouterCache(paper_net)
        answers = cache.route_batch(1, [2, 3, 6, 7])
        for target, (path, epoch) in zip((2, 3, 6, 7), answers):
            assert path == cache.route(1, target)
            assert epoch == cache.epoch

    def test_route_batch_none_for_unreachable(self, paper_net):
        cache = EpochRouterCache(paper_net)
        (answer,) = cache.route_batch(7, [1])
        assert answer[0] is None
