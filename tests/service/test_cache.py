"""Epoch-versioned cache: hits, invalidation, degradation-kept trees."""

import math

import pytest

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.service.cache import EpochRouterCache
from repro.service.metrics import MetricsRegistry
from repro.topology.reference import nsfnet_network


class TestWarmServing:
    def test_matches_per_query_router_costs(self, paper_net):
        cache = EpochRouterCache(paper_net)
        single = LiangShenRouter(paper_net)
        for s in paper_net.nodes():
            for t in paper_net.nodes():
                if s == t:
                    continue
                try:
                    expected = single.route(s, t).cost
                except NoPathError:
                    expected = None
                if expected is None:
                    assert cache.cost(s, t) == math.inf
                    with pytest.raises(NoPathError):
                        cache.route(s, t)
                else:
                    assert cache.cost(s, t) == pytest.approx(expected)

    def test_hits_and_misses(self, paper_net):
        cache = EpochRouterCache(paper_net)
        cache.route(1, 7)
        cache.route(1, 6)  # same source: warm
        cache.route(2, 7)  # new source: miss
        counters = cache.counters()
        assert counters["misses"] == 2
        assert counters["hits"] == 1
        assert cache.cached_sources == 2
        assert cache.rebuilds == 1

    def test_same_node_queries(self, paper_net):
        cache = EpochRouterCache(paper_net)
        assert cache.cost(1, 1) == 0.0
        with pytest.raises(ValueError):
            cache.route(1, 1)

    def test_tree_returns_copy(self, paper_net):
        cache = EpochRouterCache(paper_net)
        cache.tree(1).clear()
        assert cache.tree(1)

    def test_callable_network_factory(self, paper_net):
        calls = []

        def factory():
            calls.append(1)
            return paper_net

        cache = EpochRouterCache(factory)
        cache.route(1, 7)
        cache.route(1, 6)
        assert len(calls) == 1  # once per rebuild, not per query
        cache.invalidate()
        cache.route(1, 7)
        assert len(calls) == 2


class TestEpochs:
    def test_bumps_are_cheap_and_lazy(self, paper_net):
        cache = EpochRouterCache(paper_net)
        cache.route(1, 7)
        assert cache.epoch == 0
        cache.invalidate()
        cache.invalidate()
        assert cache.epoch == 2
        assert cache.built_epoch == 0  # nothing rebuilt yet
        cache.route(1, 7)
        assert cache.built_epoch == 2
        assert cache.rebuilds == 2

    def test_full_invalidation_drops_all_trees(self, paper_net):
        cache = EpochRouterCache(paper_net)
        cache.route(1, 7)
        cache.route(2, 7)
        cache.invalidate()
        cache.route(1, 7)
        assert cache.counters()["trees_dropped"] == 2
        assert cache.cached_sources == 1

    def test_degradation_keeps_untouched_trees(self, paper_net):
        cache = EpochRouterCache(paper_net)
        route_17 = cache.route(1, 7)
        hop = route_17.hops[0]
        cache.route(2, 7)
        # Degrade a channel the source-1 tree uses: only that tree drops.
        cache.mark_channel_degraded(hop.tail, hop.head, hop.wavelength)
        cache.route(2, 7)
        counters = cache.counters()
        assert counters["trees_kept"] >= 0
        assert counters["trees_dropped"] >= 1

    def test_whole_link_degradation(self, paper_net):
        cache = EpochRouterCache(paper_net)
        route_17 = cache.route(1, 7)
        hop = route_17.hops[0]
        cache.mark_channel_degraded(hop.tail, hop.head)  # all wavelengths
        cache.route(1, 7)
        assert cache.counters()["trees_dropped"] == 1


class TestPostMutationCorrectness:
    """The acceptance contract: cache answers match a fresh router."""

    def _mutated_copies(self):
        """A network plus the same network with one channel removed."""
        net = nsfnet_network(num_wavelengths=3, seed=3)
        link = next(iter(net.links()))
        wavelength = min(link.costs)
        shrunk = net.copy()
        # Rebuild the shrunk network without one channel.
        from repro.core.network import WDMNetwork

        shrunk = WDMNetwork(net.num_wavelengths, net.conversion(net.nodes()[0]))
        for node in net.nodes():
            shrunk.add_node(node, net.conversion(node))
        for other in net.links():
            costs = dict(other.costs)
            if other.tail == link.tail and other.head == link.head:
                del costs[wavelength]
            if costs:
                shrunk.add_link(other.tail, other.head, costs)
        return net, shrunk, (link.tail, link.head, wavelength)

    def test_degraded_routes_match_fresh_router_costs(self):
        net, shrunk, (tail, head, wavelength) = self._mutated_copies()
        view = {"net": net}
        cache = EpochRouterCache(lambda: view["net"])
        for source in net.nodes():
            cache.tree(source)  # warm every tree
        view["net"] = shrunk
        cache.mark_channel_degraded(tail, head, wavelength)
        fresh = LiangShenRouter(shrunk)
        for source in shrunk.nodes():
            for target in shrunk.nodes():
                if source == target:
                    continue
                try:
                    expected = fresh.route(source, target).cost
                except NoPathError:
                    expected = math.inf
                assert cache.cost(source, target) == pytest.approx(expected), (
                    source,
                    target,
                )

    def test_full_invalidation_byte_identical_to_cold(self):
        net, shrunk, (tail, head, wavelength) = self._mutated_copies()
        view = {"net": net}
        warm = EpochRouterCache(lambda: view["net"])
        for source in net.nodes():
            warm.tree(source)
        view["net"] = shrunk
        warm.invalidate()
        cold = EpochRouterCache(shrunk)
        for source in shrunk.nodes():
            assert warm.tree(source) == cold.tree(source)


class TestMetricsIntegration:
    def test_registry_counters_track(self, paper_net):
        registry = MetricsRegistry()
        cache = EpochRouterCache(paper_net, metrics=registry)
        cache.route(1, 7)
        cache.route(1, 6)
        cache.invalidate()
        cache.route(1, 7)
        snap = registry.snapshot()
        assert snap["cache.hits"] == 1
        assert snap["cache.misses"] == 2
        assert snap["cache.rebuilds"] == 2
        assert snap["cache.trees_dropped"] == 1
        assert snap["cache.epoch"] == 1
        assert snap["cache.tree_build.count"] == 2
