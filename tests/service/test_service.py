"""RoutingService facade and its provisioning-layer wiring."""

import math
import random

import pytest

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError, ServiceOverloadError
from repro.service import EpochRouterCache, RoutingService
from repro.topology.reference import nsfnet_network
from repro.wdm.provisioning import SemilightpathProvisioner


class TestFacade:
    def test_route_and_cost(self, paper_net):
        with RoutingService(paper_net, workers=0) as service:
            assert service.route(1, 7).total_cost == 2.0
            assert service.cost(1, 6) == 3.5
            assert service.cost(1, 1) == 0.0
            assert service.cost(7, 1) == math.inf

    def test_try_route(self, paper_net):
        with RoutingService(paper_net, workers=0) as service:
            assert service.try_route(7, 1) is None
            assert service.try_route(1, 7) is not None

    def test_route_raises_no_path(self, paper_net):
        with RoutingService(paper_net, workers=0) as service:
            with pytest.raises(NoPathError):
                service.route(7, 1)

    def test_worker_mode_matches_sync_mode(self, paper_net):
        with RoutingService(paper_net, workers=0) as sync_service:
            with RoutingService(paper_net, workers=3) as pooled:
                for s in paper_net.nodes():
                    for t in paper_net.nodes():
                        if s == t:
                            continue
                        assert pooled.cost(s, t) == sync_service.cost(s, t)

    def test_submit_returns_future(self, paper_net):
        with RoutingService(paper_net, workers=2) as service:
            future = service.submit(1, 7)
            assert future.result(timeout=30.0).total_cost == 2.0

    def test_overload_propagates(self, paper_net):
        service = RoutingService(paper_net, workers=0, queue_limit=1)
        service.submit(1, 7)
        with pytest.raises(ServiceOverloadError):
            service.submit(1, 6)

    def test_metrics_snapshot_contents(self, paper_net):
        with RoutingService(paper_net, workers=0) as service:
            service.route(1, 7)
            service.route(1, 6)
            snap = service.metrics_snapshot()
            assert snap["engine.served"] == 2
            assert snap["cache.misses"] == 1
            assert snap["cache.hits"] == 1
            assert snap["service.admission_ms"]["count"] == 2
            assert "p99" in snap["service.admission_ms"]
            assert "cache.epoch" not in snap or snap["cache.epoch"] == 0

    def test_render_metrics_is_text(self, paper_net):
        with RoutingService(paper_net, workers=0) as service:
            service.route(1, 7)
            text = service.render_metrics()
            assert "engine.served: 1" in text

    def test_invalidation_hooks_bump_epoch(self, paper_net):
        with RoutingService(paper_net, workers=0) as service:
            path = service.route(1, 7)
            assert service.epoch == 0
            service.notify_reserved(path)
            assert service.epoch == 1
            service.notify_link_degraded(1, 2)
            assert service.epoch == 2
            service.notify_released(path)
            assert service.epoch == 3


class TestProvisionerWiring:
    def test_attach_returns_service_and_detach(self, paper_net):
        provisioner = SemilightpathProvisioner(paper_net)
        assert provisioner.service is None
        service = provisioner.attach_service()
        assert provisioner.service is service
        provisioner.detach_service()
        assert provisioner.service is None

    def test_admissions_track_epoch(self, paper_net):
        provisioner = SemilightpathProvisioner(paper_net)
        service = provisioner.attach_service()
        connection = provisioner.establish(1, 7)
        assert service.epoch == 1  # reservation marked degraded
        provisioner.teardown(connection)
        assert service.epoch == 2  # release = full invalidation

    def test_admissions_match_cold_router_on_residual(self):
        """After every mutation, served routes cost the same as a cold
        router built on the identical residual network, and stay feasible."""
        net = nsfnet_network(num_wavelengths=4, seed=1)
        rng = random.Random(7)
        nodes = net.nodes()
        provisioner = SemilightpathProvisioner(net)
        service = provisioner.attach_service()
        connections = []
        for step in range(30):
            source, target = rng.sample(nodes, 2)
            connection = provisioner.try_establish(source, target)
            if connection is not None:
                connections.append(connection)
            if step % 7 == 6 and connections:
                provisioner.teardown(
                    connections.pop(rng.randrange(len(connections)))
                )
            residual = provisioner.residual_network()
            cold = LiangShenRouter(residual)
            for _ in range(4):
                a, b = rng.sample(nodes, 2)
                try:
                    warm = service.route(a, b)
                except NoPathError:
                    warm = None
                try:
                    expected = cold.route(a, b).cost
                except NoPathError:
                    expected = None
                if expected is None:
                    assert warm is None
                else:
                    assert warm is not None
                    assert warm.total_cost == pytest.approx(expected)
                    warm.validate(residual)  # only free channels used

    def test_full_invalidation_byte_identical_to_cold_cache(self):
        net = nsfnet_network(num_wavelengths=4, seed=1)
        rng = random.Random(3)
        nodes = net.nodes()
        provisioner = SemilightpathProvisioner(net)
        service = provisioner.attach_service()
        for _ in range(10):
            provisioner.try_establish(*rng.sample(nodes, 2))
        service.invalidate()
        cold = EpochRouterCache(provisioner.residual_network())
        for source in nodes:
            assert service.cache.tree(source) == cold.tree(source)

    def test_packing_mode_invalidates_fully(self, paper_net):
        provisioner = SemilightpathProvisioner(paper_net, packing="most-used")
        service = provisioner.attach_service()
        provisioner.establish(1, 7)
        # Full invalidation: next query rebuilds and serves correctly.
        assert service.epoch == 1
        residual = provisioner.residual_network()
        cold = LiangShenRouter(residual)
        for target in (6, 7):
            assert service.route(1, target).total_cost == pytest.approx(
                cold.route(1, target).cost
            )

    def test_blocking_behaviour_preserved(self, tiny_net):
        provisioner = SemilightpathProvisioner(tiny_net)
        provisioner.attach_service()
        first = provisioner.establish("a", "c")
        assert first.path.total_cost == 2.5
        second = provisioner.establish("a", "c")  # forced onto direct link
        assert second.path.total_cost == 4.0
        assert provisioner.try_establish("a", "c") is None  # now blocked
