"""Incremental (delta-epoch) mode of the epoch router cache.

Every test drives the cache exactly as the serving stack does — fault
state lives in a :class:`FaultInjector` whose ``network_view`` is the
cache's factory, and notifications arrive through the ``mark_*``
methods — then checks both the *accounting* (patched vs rebuilt) and the
*answers* (hop-for-hop against a fresh router on the degraded view).
"""

import pytest

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent
from repro.service.cache import EpochRouterCache
from repro.topology.reference import paper_figure1_network


def incremental_cache(net):
    injector = FaultInjector(net)
    cache = EpochRouterCache(injector.network_view, incremental=True)
    return injector, cache


def fail_channel(injector, cache, tail, head, wavelength):
    injector.apply(
        FaultEvent(0.5, "channel_fail", tail=tail, head=head, wavelength=wavelength)
    )
    cache.mark_channel_degraded(tail, head, wavelength)


def recover_channel(injector, cache, tail, head, wavelength):
    injector.apply(
        FaultEvent(0.5, "channel_recover", tail=tail, head=head, wavelength=wavelength)
    )
    cache.mark_channel_recovered(tail, head, wavelength)


def assert_matches_fresh(cache, injector, pairs):
    fresh = LiangShenRouter(injector.network_view(), heap="flat")
    for source, target in pairs:
        try:
            served = cache.route(source, target)
        except NoPathError:
            served = None
        try:
            expected = fresh.route(source, target).path
        except NoPathError:
            expected = None
        if expected is None:
            assert served is None, (source, target)
        else:
            assert served is not None, (source, target)
            assert served.hops == expected.hops, (source, target)
            assert served.total_cost == expected.total_cost


class TestIncrementalInvalidation:
    def test_fail_is_patched_not_rebuilt(self):
        injector, cache = incremental_cache(paper_figure1_network())
        baseline = cache.route(1, 7)
        hop = baseline.hops[0]
        fail_channel(injector, cache, hop.tail, hop.head, hop.wavelength)
        assert_matches_fresh(cache, injector, [(1, 7)])
        counters = cache.counters()
        assert counters["rebuilds"] == 1  # only the initial build
        assert counters["patches"] == 1
        assert counters["tree_patches"] == 1  # source 1's warm run repaired

    def test_recovery_is_patched_and_restores_routes(self):
        injector, cache = incremental_cache(paper_figure1_network())
        baseline = cache.route(1, 7)
        hop = baseline.hops[0]
        fail_channel(injector, cache, hop.tail, hop.head, hop.wavelength)
        cache.route(1, 7)
        recover_channel(injector, cache, hop.tail, hop.head, hop.wavelength)
        restored = cache.route(1, 7)
        assert restored.hops == baseline.hops
        assert restored.total_cost == baseline.total_cost
        counters = cache.counters()
        assert counters["rebuilds"] == 1  # recovery skipped the rebuild too
        assert counters["patches"] == 2

    def test_recovery_of_unknown_resource_falls_back_to_rebuild(self):
        injector, cache = incremental_cache(paper_figure1_network())
        cache.route(1, 7)
        # A wavelength the overlay never emitted a slot for: the
        # recovery would have to add structure, which a patch cannot —
        # it must trigger the fallback rebuild.
        cache.mark_channel_recovered(1, 2, 99)
        cache.route(1, 7)
        counters = cache.counters()
        assert counters["rebuilds"] == 2
        assert counters["patches"] == 0

    def test_invalidate_discards_queued_patch_ops(self):
        injector, cache = incremental_cache(paper_figure1_network())
        cache.route(1, 7)
        cache.mark_channel_degraded(1, 2, 0)
        cache.invalidate()
        cache.route(1, 7)
        counters = cache.counters()
        assert counters["rebuilds"] == 2
        assert counters["patches"] == 0

    def test_epoch_bumps_match_legacy_semantics(self):
        _, cache = incremental_cache(paper_figure1_network())
        assert cache.epoch == 0
        cache.mark_channel_degraded(1, 2, 0)
        cache.mark_channel_recovered(1, 2, 0)
        cache.mark_converter_failed(2)
        cache.mark_converter_recovered(2)
        cache.invalidate()
        assert cache.epoch == 5

    def test_warm_hits_are_counted_as_hits(self):
        injector, cache = incremental_cache(paper_figure1_network())
        cache.route(1, 7)
        cache.route(1, 2)
        counters = cache.counters()
        assert counters["misses"] == 1
        assert counters["hits"] == 1

    def test_reserved_path_is_masked_incrementally(self):
        injector, cache = incremental_cache(paper_figure1_network())
        path = cache.route(1, 7)
        cache.mark_path_reserved(path)
        # Mirror the reservation in the fault state so the comparison
        # router sees the same residual network.
        for hop in path.hops:
            injector.apply(
                FaultEvent(
                    0.5,
                    "channel_fail",
                    tail=hop.tail,
                    head=hop.head,
                    wavelength=hop.wavelength,
                )
            )
        assert_matches_fresh(cache, injector, [(1, 7)])
        assert cache.counters()["patches"] == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_legacy_cache_through_churn(self, seed):
        """Same notifications, same answers — incremental is invisible."""
        import random

        rng = random.Random(seed)
        net = paper_figure1_network()
        inj_a = FaultInjector(net)
        inj_b = FaultInjector(net)
        inc = EpochRouterCache(inj_a.network_view, incremental=True)
        legacy = EpochRouterCache(inj_b.network_view)
        channels = [
            (link.tail, link.head, w)
            for link in net.links()
            for w in sorted(link.costs)
        ]
        nodes = net.nodes()
        pairs = [(s, t) for s in nodes for t in nodes if s != t]
        failed: list[tuple] = []
        for _ in range(12):
            if failed and rng.random() < 0.4:
                tail, head, w = failed.pop(rng.randrange(len(failed)))
                for injector, cache in ((inj_a, inc), (inj_b, legacy)):
                    recover_channel(injector, cache, tail, head, w)
            else:
                tail, head, w = rng.choice(channels)
                failed.append((tail, head, w))
                for injector, cache in ((inj_a, inc), (inj_b, legacy)):
                    fail_channel(injector, cache, tail, head, w)
            for source, target in rng.sample(pairs, 3):
                try:
                    a = inc.route(source, target)
                except NoPathError:
                    a = None
                try:
                    b = legacy.route(source, target)
                except NoPathError:
                    b = None
                if b is None:
                    assert a is None, (source, target)
                else:
                    assert a is not None and a.hops == b.hops, (source, target)
