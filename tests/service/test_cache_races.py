"""Regression test: concurrent invalidation must never leak a failed channel.

The scenario behind ``EpochRouterCache.route_with_epoch`` reading the
path and the ``built_epoch`` under one lock: a writer marks a channel
degraded (after removing it from the network the cache's factory sees)
while readers hammer the same pair.  Answers stamped with an epoch at or
past the mark were built against the post-failure view, so they must
never traverse the failed channel.  Answers from older epochs may — that
is exactly what the epoch stamp (and the service's staleness flag) is
for.
"""

from __future__ import annotations

import threading
import time

from repro.core.network import WDMNetwork
from repro.exceptions import NoPathError
from repro.service.cache import EpochRouterCache


class TestConcurrentInvalidation:
    def test_failed_channel_never_served_from_new_epoch(self, paper_net):
        baseline = EpochRouterCache(paper_net).route(1, 7)
        hop = baseline.hops[0]
        victim = (hop.tail, hop.head, hop.wavelength)

        failed: set[tuple] = set()
        failed_lock = threading.Lock()

        def factory() -> WDMNetwork:
            with failed_lock:
                dead = set(failed)
            view = WDMNetwork(
                paper_net.num_wavelengths, paper_net.default_conversion
            )
            for node in paper_net.nodes():
                view.add_node(node, paper_net.explicit_conversion(node))
            for link in paper_net.links():
                costs = {
                    w: c
                    for w, c in link.costs.items()
                    if (link.tail, link.head, w) not in dead
                }
                view.add_link(link.tail, link.head, costs)
            return view

        cache = EpochRouterCache(factory)
        barrier = threading.Barrier(3)
        stop = threading.Event()
        mark_epoch: list[int] = []
        answers: list[tuple[int, frozenset]] = []
        errors: list[BaseException] = []

        def reader() -> None:
            barrier.wait()
            try:
                while not stop.is_set():
                    try:
                        path, epoch = cache.route_with_epoch(1, 7)
                    except NoPathError:
                        continue
                    channels = frozenset(
                        (h.tail, h.head, h.wavelength) for h in path.hops
                    )
                    answers.append((epoch, channels))
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)

        def writer() -> None:
            barrier.wait()
            time.sleep(0.01)  # let the readers populate the pre-failure cache
            # Order matters and is the contract under test: the channel
            # leaves the factory's world *before* the epoch is bumped, so
            # any rebuild stamped with the new epoch cannot see it.
            with failed_lock:
                failed.add(victim)
            cache.mark_channel_degraded(*victim)
            mark_epoch.append(cache.epoch)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        threads[-1].join()
        marked = mark_epoch[0]
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if any(epoch >= marked for epoch, _ in answers):
                break
            time.sleep(0.005)
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors, errors
        post_mark = [(e, chans) for e, chans in answers if e >= marked]
        assert post_mark, "readers never observed the post-failure epoch"
        for epoch, channels in post_mark:
            assert victim not in channels, (
                f"answer at epoch {epoch} (mark at {marked}) traversed the "
                f"failed channel {victim}"
            )
        # Sanity: the victim really was on the pre-failure optimum, so the
        # test had something to catch.
        assert any(victim in chans for _, chans in answers if _ < marked) or any(
            epoch < marked for epoch, _ in answers
        )
