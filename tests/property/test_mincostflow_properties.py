"""Property-based tests for the min-cost flow substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.shortestpath.mincostflow import MinCostFlow


@st.composite
def flow_instances(draw):
    """Random small flow networks with integer capacities."""
    n = draw(st.integers(2, 8))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(1, 3),
                st.floats(0.0, 10.0, allow_nan=False),
            ).filter(lambda a: a[0] != a[1]),
            max_size=20,
        )
    )
    amount = draw(st.integers(0, 4))
    return n, arcs, amount


def build(n, arcs):
    flow = MinCostFlow(n)
    ids = [flow.add_arc(t, h, c, w) for t, h, c, w in arcs]
    return flow, ids


@given(case=flow_instances())
@settings(max_examples=150, deadline=None)
def test_conservation_and_capacity(case):
    n, arcs, amount = case
    flow, ids = build(n, arcs)
    result = flow.solve(0, n - 1, amount)
    # Capacity respected on every arc.
    for arc_id, (t, h, cap, _w) in zip(ids, arcs):
        assert 0 <= result.arc_flow[arc_id] <= cap
    # Conservation at every interior node.
    balance = [0] * n
    for arc_id, (t, h, _cap, _w) in zip(ids, arcs):
        units = result.arc_flow[arc_id]
        balance[t] -= units
        balance[h] += units
    assert balance[0] == -result.flow_sent
    assert balance[n - 1] == result.flow_sent
    for v in range(1, n - 1):
        assert balance[v] == 0
    # Cost matches the flow decomposition.
    recomputed = sum(
        result.arc_flow[arc_id] * w for arc_id, (_t, _h, _c, w) in zip(ids, arcs)
    )
    assert result.total_cost == pytest.approx(recomputed)


@given(case=flow_instances())
@settings(max_examples=100, deadline=None)
def test_flow_sent_monotone_in_amount(case):
    n, arcs, _amount = case
    sent = []
    for amount in range(4):
        flow, _ids = build(n, arcs)
        sent.append(flow.solve(0, n - 1, amount).flow_sent)
    assert sent == sorted(sent)
    assert all(s <= a for s, a in zip(sent, range(4)))


@given(case=flow_instances())
@settings(max_examples=100, deadline=None)
def test_marginal_cost_non_decreasing(case):
    """Successive augmentations only get more expensive (convexity of
    min-cost flow in the amount)."""
    n, arcs, _amount = case
    costs = []
    for amount in range(4):
        flow, _ids = build(n, arcs)
        result = flow.solve(0, n - 1, amount)
        if result.flow_sent < amount:
            break
        costs.append(result.total_cost)
    marginals = [b - a for a, b in zip(costs, costs[1:])]
    assert all(m2 >= m1 - 1e-9 for m1, m2 in zip(marginals, marginals[1:]))
