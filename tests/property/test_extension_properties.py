"""Property-based tests for the extension routers (bounded / KSP / lightpath)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.brute_force import brute_force_route, brute_force_route_bounded
from repro.core.bounded import BoundedConversionRouter
from repro.core.ksp import k_shortest_semilightpaths
from repro.core.lightpath import LightpathRouter
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from tests.property.strategies import networks_with_endpoints


def cost_or_none(fn):
    try:
        return fn()
    except NoPathError:
        return None


@given(case=networks_with_endpoints(), budget=st.integers(0, 4))
@settings(max_examples=80, deadline=None)
def test_bounded_router_matches_bounded_oracle(case, budget):
    net, s, t = case
    expected = cost_or_none(
        lambda: brute_force_route_bounded(net, s, t, budget).total_cost
    )
    actual = cost_or_none(
        lambda: BoundedConversionRouter(net).route(s, t, max_conversions=budget).cost
    )
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_bounded_cost_monotone_in_budget(case):
    net, s, t = case
    router = BoundedConversionRouter(net)
    costs = []
    for q in range(4):
        costs.append(cost_or_none(lambda: router.route(s, t, max_conversions=q).cost))
    finite = [c for c in costs if c is not None]
    # Once feasible, stays feasible; costs never increase with budget.
    first_feasible = next((i for i, c in enumerate(costs) if c is not None), None)
    if first_feasible is not None:
        assert all(c is not None for c in costs[first_feasible:])
    assert all(a >= b - 1e-9 for a, b in zip(finite, finite[1:]))


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_large_budget_reaches_unconstrained(case):
    net, s, t = case
    generous = net.num_nodes * net.num_wavelengths + 2
    expected = cost_or_none(lambda: LiangShenRouter(net).route(s, t).cost)
    actual = cost_or_none(
        lambda: BoundedConversionRouter(net).route(s, t, max_conversions=generous).cost
    )
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)


@given(case=networks_with_endpoints(), k=st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_ksp_sorted_distinct_and_anchored(case, k):
    net, s, t = case
    try:
        paths = k_shortest_semilightpaths(net, s, t, k=k)
    except NoPathError:
        with pytest.raises(NoPathError):
            LiangShenRouter(net).route(s, t)
        return
    costs = [p.total_cost for p in paths]
    assert costs == sorted(costs)
    assert len({p.hops for p in paths}) == len(paths)
    optimum = LiangShenRouter(net).route(s, t).cost
    assert costs[0] == pytest.approx(optimum)
    for path in paths:
        assert path.evaluate_cost(net) == pytest.approx(path.total_cost)


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_lightpath_router_is_zero_budget(case):
    net, s, t = case
    expected = cost_or_none(lambda: brute_force_route_bounded(net, s, t, 0).total_cost)
    actual = cost_or_none(lambda: LightpathRouter(net).route(s, t).cost)
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)


@given(case=networks_with_endpoints())
@settings(max_examples=40, deadline=None)
def test_unbounded_oracle_equals_generous_bounded_oracle(case):
    """Internal consistency of the two oracles themselves."""
    net, s, t = case
    generous = net.num_nodes * net.num_wavelengths + 2
    a = cost_or_none(lambda: brute_force_route(net, s, t).total_cost)
    b = cost_or_none(lambda: brute_force_route_bounded(net, s, t, generous).total_cost)
    if a is None:
        assert b is None
    else:
        assert b == pytest.approx(a)
