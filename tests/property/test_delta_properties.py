"""Property-based parity for incremental overlay maintenance.

The delta-epoch machinery promises that patching is *observationally
invisible*: after any sequence of fail/recover events, an overlay
maintained in place by :class:`~repro.shortestpath.DeltaOverlay` must be
indistinguishable from one built fresh off the degraded network —
byte-identical CSR on materialization, hop-for-hop identical routes when
served through the incremental epoch cache.  These tests drive both
promises from hypothesis-generated networks and churn sequences,
including the awkward cases: duplicate fails, recoveries of resources
that were never down (which force a full rebuild), and fiber events on
unidirectional links.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent
from repro.service.service import RoutingService
from repro.shortestpath import DeltaOverlay
from tests.strategies import wdm_networks


@st.composite
def churn_cases(draw):
    """A network plus a fault/recovery sequence over its real resources.

    Recover events may target resources that are currently up (hypothesis
    orders events freely), exercising the recover-of-unknown -> full
    rebuild path alongside plain patches.
    """
    net = draw(wdm_networks(max_nodes=6, max_wavelengths=3))
    channels = [
        (link.tail, link.head, w)
        for link in net.links()
        for w in sorted(link.costs)
    ]
    links = sorted({(t, h) for t, h, _ in channels})
    nodes = net.nodes()
    ops = []
    for _ in range(draw(st.integers(1, 10))):
        kind = draw(st.sampled_from(["channel", "link", "converter"]))
        fail = draw(st.booleans())
        if kind == "channel" and channels:
            tail, head, w = draw(st.sampled_from(channels))
            ops.append(
                (
                    "channel_fail" if fail else "channel_recover",
                    {"tail": tail, "head": head, "wavelength": w},
                )
            )
        elif kind == "link" and links:
            tail, head = draw(st.sampled_from(links))
            ops.append(
                (
                    "link_fail" if fail else "link_recover",
                    {"tail": tail, "head": head},
                )
            )
        else:
            node = draw(st.sampled_from(nodes))
            ops.append(
                (
                    "converter_fail" if fail else "converter_recover",
                    {"node": node},
                )
            )
    return net, ops


def _apply_to_delta(delta, base, kind, kw):
    """Mirror one injector event onto *delta*; None means rebuild needed.

    Fiber events cover both directions but only those that exist as
    directed links — the same filtering the injector's service
    notifications perform.
    """
    if kind == "channel_fail":
        return delta.fail_channel(kw["tail"], kw["head"], kw["wavelength"])
    if kind == "channel_recover":
        return delta.recover_channel(kw["tail"], kw["head"], kw["wavelength"])
    if kind == "converter_fail":
        return delta.fail_converter(kw["node"])
    if kind == "converter_recover":
        return delta.recover_converter(kw["node"])
    out = []
    for tail, head in (
        (kw["tail"], kw["head"]),
        (kw["head"], kw["tail"]),
    ):
        if not base.has_link(tail, head):
            continue
        slots = (
            delta.fail_link(tail, head)
            if kind == "link_fail"
            else delta.recover_link(tail, head)
        )
        if slots is None:
            return None
        out.extend(slots)
    return out


@given(case=churn_cases())
@settings(max_examples=40, deadline=None)
def test_patched_overlay_materializes_byte_identical(case):
    net, ops = case
    injector = FaultInjector(net)
    delta = DeltaOverlay(LiangShenRouter(net, heap="flat").all_pairs_graph())
    for kind, kw in ops:
        injector.apply(FaultEvent(0.5, kind, **kw))
        if _apply_to_delta(delta, net, kind, kw) is None:
            # Recover of a resource the overlay never saw fail: the real
            # cache rebuilds here, and so does the mirror.
            view = injector.network_view()
            delta = DeltaOverlay(
                LiangShenRouter(view, heap="flat").all_pairs_graph()
            )
    view = injector.network_view()
    fresh = LiangShenRouter(view, heap="flat").all_pairs_graph()
    patched = delta.materialize()
    assert patched.graph.num_nodes == fresh.graph.num_nodes
    assert patched.graph.csr() == fresh.graph.csr()
    assert list(patched.decode) == list(fresh.decode)


@given(case=churn_cases())
@settings(max_examples=25, deadline=None)
def test_incremental_cache_routes_match_fresh_router(case):
    net, ops = case
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t][:3]
    injector = FaultInjector(net)
    service = RoutingService(injector.network_view, workers=0, incremental=True)
    injector.attach(service)
    try:
        for kind, kw in ops:
            injector.apply(FaultEvent(0.5, kind, **kw))
            fresh = LiangShenRouter(injector.network_view(), heap="flat")
            for source, target in pairs:
                try:
                    served = service.cache.route(source, target)
                except NoPathError:
                    served = None
                try:
                    expected = fresh.route(source, target).path
                except NoPathError:
                    expected = None
                if expected is None:
                    assert served is None, (kind, source, target)
                else:
                    assert served is not None, (kind, source, target)
                    assert served.hops == expected.hops, (kind, source, target)
                    assert served.total_cost == expected.total_cost
    finally:
        service.close()
