"""Property-based equivalence of every shortest-path kernel and query path.

The hot-path overhaul leaves four kernels (``flat``, ``binary``,
``pairing``, ``fibonacci``) and two single-pair query strategies (the
shared-``G'`` overlay and the per-query ``G_{s,t}`` rebuild).  All of
them share one tie-breaking rule — equal-distance nodes settle in
ascending auxiliary-id order — so they must agree not just on optimal
*cost* but on the exact *hop sequence*, even when many optima exist.

These tests pin that equivalence on arbitrary hypothesis-generated
networks, with the brute-force state-relaxation router as the cost
oracle.
"""

import pytest
from hypothesis import given, settings

from repro.baseline.brute_force import brute_force_route
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from tests.strategies import networks_with_endpoints, wdm_networks

KERNELS = ["flat", "binary", "pairing", "fibonacci"]


def try_route(router, s, t):
    try:
        return router.route(s, t)
    except NoPathError:
        return None


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_all_kernels_return_identical_paths(case):
    net, s, t = case
    results = {k: try_route(LiangShenRouter(net, heap=k), s, t) for k in KERNELS}
    reference = results["flat"]
    for kernel, result in results.items():
        if reference is None:
            assert result is None, kernel
        else:
            assert result is not None, kernel
            assert result.cost == reference.cost, kernel
            assert result.path.hops == reference.path.hops, kernel


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_overlay_matches_per_query_rebuild(case):
    net, s, t = case
    overlay = try_route(LiangShenRouter(net, overlay=True), s, t)
    rebuild = try_route(LiangShenRouter(net, overlay=False), s, t)
    if overlay is None:
        assert rebuild is None
    else:
        assert rebuild is not None
        assert overlay.cost == rebuild.cost
        assert overlay.path.hops == rebuild.path.hops
        # The overlay skips the per-query G_{s,t} construction but must
        # search the same layered core: identical auxiliary sizes.
        assert overlay.stats.sizes == rebuild.stats.sizes


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_flat_kernel_matches_brute_force_cost(case):
    net, s, t = case
    try:
        expected = brute_force_route(net, s, t).total_cost
    except NoPathError:
        expected = None
    actual = try_route(LiangShenRouter(net, heap="flat"), s, t)
    if expected is None:
        assert actual is None
    else:
        assert actual is not None
        assert actual.cost == pytest.approx(expected)


@given(net=wdm_networks())
@settings(max_examples=40, deadline=None)
def test_tree_queries_match_single_pair_queries_exactly(net):
    """Corollary 1 trees and overlay single-pair queries agree hop-for-hop."""
    router = LiangShenRouter(net)
    for source in net.nodes():
        tree = router.route_tree(source)
        for target in net.nodes():
            if target == source:
                continue
            single = try_route(router, source, target)
            in_tree = tree.get(target)
            if single is None:
                assert in_tree is None
            else:
                assert in_tree is not None
                assert in_tree.hops == single.path.hops
                assert in_tree.total_cost == single.cost
