"""Property-based tests for light-hierarchy multicast (hypothesis).

The central properties:

* **Harness cleanliness** — on arbitrary networks the greedy joiner never
  produces a certificate, reachability, or cost disagreement (blocked
  requests against a feasible oracle are allowed: greedy incompleteness).
* **Oracle lower bound** — a routed hierarchy's cost never undercuts the
  channel-graph DP optimum and re-evaluates (Eq. 1) to its claimed cost.
* **Constraint monotonicity** — tightening splitter capabilities never
  makes routing cheaper.
* **Tree degeneration** — a single-member multicast is exactly unicast.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import LiangShenRouter
from repro.exceptions import MulticastBlockedError
from repro.multicast.hierarchy import MulticastRequest
from repro.multicast.oracle import optimal_hierarchy_cost
from repro.multicast.router import MulticastRouter
from repro.multicast.splitters import MI, TAC, SplitterMap
from repro.multicast.verify import MulticastHarness, random_multicast_scenario
from repro.verify.certificate import check_hierarchy_certificate, costs_close
from tests.property.strategies import wdm_networks


@st.composite
def multicast_cases(draw):
    """A network plus a multicast request over its nodes."""
    net = draw(wdm_networks(max_nodes=6, max_wavelengths=3))
    nodes = net.nodes()
    source = draw(st.sampled_from(nodes))
    others = [node for node in nodes if node != source]
    if not others:
        net.add_node("extra")
        others = ["extra"]
    members = tuple(
        draw(
            st.lists(
                st.sampled_from(others),
                unique=True,
                min_size=1,
                max_size=min(3, len(others)),
            )
        )
    )
    return net, MulticastRequest(source=source, members=members)


@given(case=multicast_cases())
@settings(max_examples=60, deadline=None)
def test_routed_hierarchies_are_certified_and_never_beat_the_oracle(case):
    net, request = case
    try:
        result = MulticastRouter(net).route(request)
    except MulticastBlockedError:
        return
    cert = check_hierarchy_certificate(
        net, result.hierarchy, source=request.source, members=request.members
    )
    assert cert.ok, cert.violations
    assert costs_close(cert.recomputed_cost, result.cost)
    optimum = optimal_hierarchy_cost(net, request)
    assert result.cost >= optimum or costs_close(result.cost, optimum)


@given(case=multicast_cases(), tightened=st.sampled_from([TAC, MI]))
@settings(max_examples=40, deadline=None)
def test_tightening_splitters_never_helps(case, tightened):
    net, request = case
    try:
        free_cost = MulticastRouter(net).route(request).cost
    except MulticastBlockedError:
        return
    constrained = SplitterMap({node: tightened for node in net.nodes()})
    try:
        tight_cost = MulticastRouter(net, splitters=constrained).route(
            request
        ).cost
    except MulticastBlockedError:
        return  # blocking under tighter constraints is legal
    assert tight_cost >= free_cost or costs_close(tight_cost, free_cost)


@given(case=multicast_cases())
@settings(max_examples=40, deadline=None)
def test_single_member_multicast_is_unicast(case):
    net, request = case
    single = MulticastRequest(
        source=request.source, members=request.members[:1]
    )
    target = single.members[0]
    unicast = LiangShenRouter(net)
    try:
        tree = unicast.route_tree(single.source)
    except Exception:
        tree = {}
    try:
        result = MulticastRouter(net).route(single)
    except MulticastBlockedError:
        assert target not in tree
        return
    assert target in tree
    assert costs_close(result.cost, tree[target].total_cost)


@pytest.mark.parametrize("seed", range(20))
def test_seeded_scenario_sweep_is_clean(seed):
    report = MulticastHarness().run(random_multicast_scenario(seed))
    assert report.ok, report.format()
