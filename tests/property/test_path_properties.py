"""Property-based tests for Semilightpath invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semilightpath import Hop, Semilightpath


@st.composite
def walks(draw):
    """Arbitrary connected walks over integer nodes with wavelengths."""
    length = draw(st.integers(1, 12))
    nodes = [draw(st.integers(0, 6))]
    for _ in range(length):
        nxt = draw(st.integers(0, 6).filter(lambda v: v != nodes[-1]))
        nodes.append(nxt)
    wavelengths = draw(
        st.lists(st.integers(0, 3), min_size=length, max_size=length)
    )
    return Semilightpath.from_sequence(nodes, wavelengths)


@given(path=walks())
@settings(max_examples=200, deadline=None)
def test_structural_invariants(path):
    # Node sequence length == hops + 1; hops chain correctly by construction.
    assert len(path.nodes()) == path.num_hops + 1
    assert path.nodes()[0] == path.source
    assert path.nodes()[-1] == path.target
    assert len(path.wavelengths()) == path.num_hops


@given(path=walks())
@settings(max_examples=200, deadline=None)
def test_conversions_match_wavelength_changes(path):
    switches = [
        (a, b)
        for a, b in zip(path.wavelengths(), path.wavelengths()[1:])
        if a != b
    ]
    conversions = path.conversions()
    assert len(conversions) == len(switches) == path.num_conversions
    for conv, (from_w, to_w) in zip(conversions, switches):
        assert (conv.from_wavelength, conv.to_wavelength) == (from_w, to_w)
    assert path.is_lightpath == (len(switches) == 0)


@given(path=walks())
@settings(max_examples=200, deadline=None)
def test_node_simplicity_definition(path):
    nodes = path.nodes()
    assert path.is_node_simple == (len(set(nodes)) == len(nodes))


@given(path=walks())
@settings(max_examples=100, deadline=None)
def test_json_round_trip(path):
    from repro.io.serialization import path_from_json, path_to_json

    restored = path_from_json(path_to_json(path))
    assert restored.hops == path.hops
