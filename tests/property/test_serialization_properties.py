"""Property-based round-trip tests for network serialization."""

import pytest
from hypothesis import given, settings

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.io.serialization import network_from_json, network_to_json
from tests.property.strategies import networks_with_endpoints, wdm_networks


@given(net=wdm_networks())
@settings(max_examples=100, deadline=None)
def test_structure_round_trips(net):
    restored = network_from_json(network_to_json(net))
    assert restored.num_nodes == net.num_nodes
    assert restored.num_links == net.num_links
    assert restored.num_wavelengths == net.num_wavelengths
    for link in net.links():
        assert restored.available_wavelengths(link.tail, link.head) == (
            link.wavelengths
        )
        for w, c in link.costs.items():
            assert restored.link_cost(link.tail, link.head, w) == c


@given(net=wdm_networks())
@settings(max_examples=60, deadline=None)
def test_serialization_is_stable(net):
    once = network_to_json(net)
    assert network_to_json(network_from_json(once)) == once


@given(case=networks_with_endpoints())
@settings(max_examples=60, deadline=None)
def test_round_trip_preserves_optimal_cost(case):
    net, s, t = case
    restored = network_from_json(network_to_json(net))

    def cost(n):
        try:
            return LiangShenRouter(n).route(s, t).cost
        except NoPathError:
            return None

    a, b = cost(net), cost(restored)
    if a is None:
        assert b is None
    else:
        assert b == pytest.approx(a)
