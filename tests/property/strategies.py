"""Compatibility shim: the shared strategies moved to ``tests/strategies.py``
so the property suites and ``tests/verify/`` draw from one distribution.
Import from :mod:`tests.strategies` in new code.
"""

from tests.strategies import (  # noqa: F401
    conversion_models,
    costs,
    networks_with_endpoints,
    wdm_networks,
)

__all__ = ["conversion_models", "costs", "wdm_networks", "networks_with_endpoints"]
