"""Property parity for fault patches written through shared memory.

The companion to ``test_delta_properties.py``: the same churn events,
but applied to a :class:`~repro.shortestpath.DeltaOverlay` bound to a
*shared-memory* ``G_all`` under ``SharedCSR.patch()`` seqlock brackets.
The promises pinned here are the ones the router server's workers rely
on:

* every masked/restored slot an in-process overlay would touch is
  touched identically through the segment (byte-level weights parity
  observed by an independently *attached* reader);
* routes off the attached view match a graph built fresh from the
  degraded network, hop for hop;
* the epoch advances by exactly 2 per patch bracket and rests even, so
  ``read_stable`` consumers can trust the seqlock arithmetic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auxiliary import build_all_pairs_graph
from repro.core.routing import run_tree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent
from repro.shortestpath import DeltaOverlay
from repro.shortestpath.shared import (
    attach_all_pairs_graph,
    leaked_segments,
    share_all_pairs_graph,
)
from tests.property.test_delta_properties import _apply_to_delta
from tests.strategies import wdm_networks


def _expressible(delta, base, kind, kw):
    """True when *delta* can patch the event without a rebuild.

    Probed *without mutating*: ``_apply_to_delta`` applies fiber events
    direction by direction and only reports ``None`` after the first
    direction already landed, so using it to discover inexpressibility
    would leave the mirror partially patched and out of lockstep with
    the shared overlay.  White-box by design — it reads the overlay's
    resource indexes, which both deltas share (same build, same CSR).
    """
    if kind == "channel_recover":
        key = (kw["tail"], kw["head"], kw["wavelength"])
        return key in delta._channel_slots
    if kind == "converter_recover":
        return kw["node"] in delta._down_converters
    if kind == "link_recover":
        return all(
            (t, h) in delta._link_channels
            for t, h in ((kw["tail"], kw["head"]), (kw["head"], kw["tail"]))
            if base.has_link(t, h)
        )
    return True  # fails are always expressible (worst case a no-op)


@st.composite
def shared_churn_cases(draw):
    """A network plus fail events, then recoveries of a failed subset.

    Unlike ``churn_cases`` this keeps the sequence *expressible* by
    construction (recoveries only target earlier failures), because the
    shared segment has no rebuild escape hatch — inexpressible events
    are the caller's problem (the server reports them; here the mirror
    skips them in lockstep, which a couple of duplicate fails still
    exercise).
    """
    net = draw(wdm_networks(max_nodes=6, max_wavelengths=3))
    channels = [
        (link.tail, link.head, w)
        for link in net.links()
        for w in sorted(link.costs)
    ]
    links = sorted({(t, h) for t, h, _ in channels})
    nodes = net.nodes()
    fails = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["channel", "link", "converter"]))
        if kind == "channel" and channels:
            tail, head, w = draw(st.sampled_from(channels))
            fails.append(
                ("channel_fail", {"tail": tail, "head": head, "wavelength": w})
            )
        elif kind == "link" and links:
            tail, head = draw(st.sampled_from(links))
            fails.append(("link_fail", {"tail": tail, "head": head}))
        else:
            fails.append(("converter_fail", {"node": draw(st.sampled_from(nodes))}))
    recovers = [
        (kind.replace("_fail", "_recover"), kw)
        for kind, kw in fails
        if draw(st.booleans())
    ]
    return net, fails + recovers


@given(case=shared_churn_cases())
@settings(max_examples=15, deadline=None)
def test_shared_patches_match_in_process_overlay_and_fresh_build(case):
    net, ops = case
    aux = build_all_pairs_graph(net)
    shared = share_all_pairs_graph(aux)
    reader = None
    try:
        owner = attach_all_pairs_graph(shared)
        reader = attach_all_pairs_graph(shared.name)
        delta = DeltaOverlay(owner)
        mirror_aux = build_all_pairs_graph(net)
        mirror = DeltaOverlay(mirror_aux)
        injector = FaultInjector(net)
        brackets = 0
        for kind, kw in ops:
            if not _expressible(mirror, net, kind, kw):
                # Inexpressible for both overlays: skip in lockstep
                # (the server would report it and demand a rebuild).
                continue
            expected_slots = _apply_to_delta(mirror, net, kind, kw)
            assert expected_slots is not None
            injector.apply(FaultEvent(0.5, kind, **kw))
            with shared.patch():
                slots = _apply_to_delta(delta, net, kind, kw)
            brackets += 1
            assert slots == expected_slots, (kind, kw)

        # Seqlock arithmetic: +2 per bracket, resting even.
        assert shared.epoch == 2 * brackets
        assert shared.epoch % 2 == 0

        # Byte-level parity: the independently attached reader observes
        # exactly the weights the in-process overlay produced.
        assert list(reader.graph.csr()[2]) == list(mirror_aux.graph.csr()[2])
        assert delta.masked_edges == mirror.masked_edges

        # Routing parity: the attached view answers like a graph built
        # fresh from the degraded network.
        fresh = build_all_pairs_graph(injector.network_view())
        for source in net.nodes():
            tree_shared, _ = run_tree(reader, source)
            tree_fresh, _ = run_tree(fresh, source)
            assert tree_shared == tree_fresh, source
    finally:
        if reader is not None:
            reader.shared_csr.close()
        shared.unlink()
    assert shared.name not in leaked_segments()
