"""Property-based tests for the distributed router on arbitrary networks."""

import pytest
from hypothesis import given, settings

from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError
from tests.property.strategies import networks_with_endpoints


@given(case=networks_with_endpoints(max_nodes=6, max_wavelengths=3))
@settings(max_examples=60, deadline=None)
def test_distributed_matches_centralized(case):
    net, s, t = case
    try:
        expected = LiangShenRouter(net).route(s, t).cost
    except NoPathError:
        expected = None
    try:
        result = DistributedSemilightpathRouter(net).route(s, t)
        actual = result.cost
    except NoPathError:
        actual = None
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)
        result.path.validate(net)


@given(case=networks_with_endpoints(max_nodes=6, max_wavelengths=3))
@settings(max_examples=40, deadline=None)
def test_message_budget_universal(case):
    """Theorem 3's shape on arbitrary inputs: messages bounded by a small
    multiple of k·m (each channel carries at most a few improvements on
    these tiny instances) and rounds by k·n."""
    net, s, t = case
    try:
        result = DistributedSemilightpathRouter(net).route(s, t)
    except NoPathError:
        return
    k = net.num_wavelengths
    m = max(net.num_links, 1)
    n = net.num_nodes
    assert result.stats.total_messages <= 4 * k * m
    assert result.stats.rounds <= k * n + 1


@given(case=networks_with_endpoints(max_nodes=5, max_wavelengths=2))
@settings(max_examples=25, deadline=None)
def test_messages_only_on_physical_links(case):
    net, s, t = case
    try:
        result = DistributedSemilightpathRouter(net).route(s, t)
    except NoPathError:
        return
    physical = {(link.tail, link.head) for link in net.links()}
    assert set(result.stats.per_link) <= physical
