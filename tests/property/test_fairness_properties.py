"""Property-based tests for the Gini fairness measure."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import gini

distributions = st.lists(st.floats(0, 1e6, allow_nan=False), min_size=0, max_size=50)


@given(values=distributions)
@settings(max_examples=200, deadline=None)
def test_range(values):
    g = gini(values)
    assert 0.0 <= g < 1.0 or g == pytest.approx(0.0)


@given(values=distributions, scale=st.floats(0.001, 1000, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_scale_invariance(values, scale):
    assert gini([v * scale for v in values]) == pytest.approx(gini(values), abs=1e-9)


@given(values=distributions, seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_permutation_invariance(values, seed):
    shuffled = values[:]
    random.Random(seed).shuffle(shuffled)
    assert gini(shuffled) == pytest.approx(gini(values), abs=1e-9)


@given(values=st.lists(st.floats(0.01, 1e6, allow_nan=False), min_size=2, max_size=30))
@settings(max_examples=150, deadline=None)
def test_concentration_increases_gini(values):
    """Moving one unit of mass from the poorest to the richest weakly
    increases the coefficient (Pigou–Dalton transfer principle)."""
    base = sorted(values)
    transferred = base[:]
    amount = transferred[0] * 0.5
    transferred[0] -= amount
    transferred[-1] += amount
    assert gini(transferred) >= gini(base) - 1e-9


@given(n=st.integers(2, 40))
@settings(max_examples=60, deadline=None)
def test_extremes(n):
    assert gini([1.0] * n) == pytest.approx(0.0)
    one_winner = [0.0] * (n - 1) + [1.0]
    assert gini(one_winner) == pytest.approx((n - 1) / n)
