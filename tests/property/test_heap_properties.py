"""Property-based tests (hypothesis) for the addressable heaps."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shortestpath.fibonacci import FibonacciHeap
from repro.shortestpath.heaps import BinaryHeap, PairingHeap

HEAP_CLASSES = [BinaryHeap, PairingHeap, FibonacciHeap]

# An operation program: push(key) | decrease(fraction) | pop
operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.floats(0, 1e6, allow_nan=False)),
        st.tuples(st.just("decrease"), st.floats(0, 1, allow_nan=False)),
        st.tuples(st.just("pop"), st.just(0.0)),
    ),
    max_size=200,
)


@given(program=operations, heap_index=st.integers(0, 2))
@settings(max_examples=150, deadline=None)
def test_heap_matches_reference_model(program, heap_index):
    """Run an arbitrary operation program against heapq-based bookkeeping."""
    heap = HEAP_CLASSES[heap_index]()
    model: dict[int, float] = {}
    next_id = 0
    for op, value in program:
        if op == "push":
            heap.push(next_id, value)
            model[next_id] = value
            next_id += 1
        elif op == "decrease" and model:
            # Pick a deterministic victim: the largest current key.
            victim = max(model, key=lambda item: (model[item], item))
            new_key = model[victim] * value  # scale into [0, key]
            heap.decrease_key(victim, new_key)
            model[victim] = new_key
        elif op == "pop" and model:
            item, key = heap.pop()
            assert key == min(model.values())
            assert model[item] == key
            del model[item]
        assert len(heap) == len(model)
    # Drain: remaining items must come out in sorted key order.
    drained = [heap.pop() for _ in range(len(heap))]
    keys = [k for _, k in drained]
    assert keys == sorted(keys)
    assert sorted(i for i, _ in drained) == sorted(model)


@given(
    values=st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=300),
    heap_index=st.integers(0, 2),
)
@settings(max_examples=100, deadline=None)
def test_heapsort_matches_sorted(values, heap_index):
    heap = HEAP_CLASSES[heap_index]()
    for i, v in enumerate(values):
        heap.push(i, v)
    out = [heap.pop()[1] for _ in range(len(values))]
    expected = values[:]
    heapq.heapify(expected)
    assert out == [heapq.heappop(expected) for _ in range(len(out))]
