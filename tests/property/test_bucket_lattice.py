"""Properties of the Dial bucket-queue kernel.

Two claims make ``heap="bucket"`` safe to enable blindly:

1. On lattice weights the bucket kernel is **byte-identical** to the
   flat reference — same distances (bit-for-bit floats, thanks to
   power-of-two scales), same parent forest, same hop sequences.
2. Off the lattice it transparently falls back to ``flat``, so results
   never depend on whether detection succeeded.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.shortestpath.bucket import bucket_dijkstra
from repro.shortestpath.flat import flat_dijkstra
from repro.shortestpath.structures import GraphBuilder

# Quarter-integer lattice costs, like the verification scenario corpus.
lattice_costs = st.integers(0, 16).map(lambda i: i / 4)
# Values a power-of-two scale <= 64 cannot make integral.
off_lattice_costs = st.sampled_from([0.1, 0.3, 1.0 / 3.0, 2.7, 1.0 / 192.0])


@st.composite
def lattice_graphs(draw, max_nodes=12):
    n = draw(st.integers(2, max_nodes))
    b = GraphBuilder(n)
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1), lattice_costs
            ),
            max_size=4 * n,
        )
    )
    for tail, head, cost in edges:
        b.add_edge(tail, head, cost)
    return b.build()


@st.composite
def lattice_networks(draw, max_nodes=6, max_wavelengths=3):
    n = draw(st.integers(2, max_nodes))
    k = draw(st.integers(1, max_wavelengths))
    model = draw(
        st.sampled_from(
            [NoConversion(), FixedCostConversion(0.25), FixedCostConversion(1.0)]
        )
    )
    net = WDMNetwork(num_wavelengths=k, default_conversion=model)
    for v in range(n):
        net.add_node(v)
    arcs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            unique=True,
            max_size=3 * n,
        )
    )
    for tail, head in arcs:
        if tail == head:
            continue
        wavelengths = draw(
            st.lists(st.integers(0, k - 1), unique=True, max_size=k)
        )
        net.add_link(tail, head, {w: draw(lattice_costs) for w in wavelengths})
    return net


@given(graph=lattice_graphs())
@settings(max_examples=80, deadline=None)
def test_bucket_byte_identical_on_lattice(graph):
    flat = flat_dijkstra(graph, 0)
    bucket = bucket_dijkstra(graph, 0)
    assert "bucket_scale" in bucket.heap_stats  # the bucket queue really ran
    assert list(bucket.dist) == list(flat.dist)
    assert list(bucket.parent) == list(flat.parent)
    assert list(bucket.parent_tag) == list(flat.parent_tag)
    assert bucket.settled == flat.settled


@given(graph=lattice_graphs(max_nodes=8), bad=off_lattice_costs)
@settings(max_examples=40, deadline=None)
def test_off_lattice_falls_back_and_stays_identical(graph, bad):
    b = GraphBuilder(graph.num_nodes + 1)
    offsets, heads, weights, tags = graph.csr()
    for u in range(graph.num_nodes):
        for i in range(offsets[u], offsets[u + 1]):
            b.add_edge(u, heads[i], weights[i], tag=tags[i])
    b.add_edge(graph.num_nodes - 1, graph.num_nodes, bad)
    poisoned = b.build()
    assert poisoned.lattice_scale() is None
    bucket = bucket_dijkstra(poisoned, 0)
    assert "bucket_scale" not in bucket.heap_stats  # fell back to flat
    flat = flat_dijkstra(poisoned, 0)
    assert list(bucket.dist) == list(flat.dist)
    assert list(bucket.parent) == list(flat.parent)


@given(case=lattice_networks())
@settings(max_examples=50, deadline=None)
def test_router_hops_identical_on_lattice_networks(case):
    net = case
    flat_router = LiangShenRouter(net, heap="flat")
    bucket_router = LiangShenRouter(net, heap="bucket")
    for s in net.nodes():
        for t in net.nodes():
            if s == t:
                continue
            try:
                reference = flat_router.route(s, t)
            except NoPathError:
                try:
                    bucket_router.route(s, t)
                except NoPathError:
                    continue
                raise AssertionError(f"bucket found a path flat did not: {s}->{t}")
            result = bucket_router.route(s, t)
            assert result.path.hops == reference.path.hops
            assert result.cost == reference.cost
            assert result.stats.settled == reference.stats.settled
