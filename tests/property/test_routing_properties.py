"""Property-based tests for the routers (hypothesis).

The central properties:

* **Oracle agreement** — the Liang–Shen optimum equals the brute-force
  state-relaxation optimum on arbitrary networks.
* **Self-consistency** — every returned path re-evaluates (Eq. 1) to its
  claimed cost on the original network.
* **Monotonicity** — adding a resource (a new channel) never makes the
  optimum worse.
* **Scale equivariance** — multiplying every cost by ``c > 0`` multiplies
  the optimum by ``c``.
* **Bound safety** — the auxiliary graph respects Observations 1-5 on
  arbitrary inputs.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.brute_force import brute_force_route
from repro.baseline.cfz import CFZRouter
from repro.core.auxiliary import build_layered_graph
from repro.core.conversion import FixedCostConversion
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from tests.property.strategies import networks_with_endpoints, wdm_networks


def route_cost(router_fn):
    try:
        return router_fn()
    except NoPathError:
        return None


@given(case=networks_with_endpoints())
@settings(max_examples=120, deadline=None)
def test_liang_shen_matches_brute_force(case):
    net, s, t = case
    expected = route_cost(lambda: brute_force_route(net, s, t).total_cost)
    actual = route_cost(lambda: LiangShenRouter(net).route(s, t).cost)
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)


@given(case=networks_with_endpoints(chain_free=True))
@settings(max_examples=80, deadline=None)
def test_cfz_matches_brute_force(case):
    """Restricted to chain-free conversion models: the CFZ wavelength graph
    permits chained conversions at a node, which Eq. (1) does not price, so
    equivalence only holds when chaining can never beat or out-reach the
    direct conversion (see repro/baseline/wavelength_graph.py)."""
    net, s, t = case
    expected = route_cost(lambda: brute_force_route(net, s, t).total_cost)
    actual = route_cost(lambda: CFZRouter(net).route(s, t).cost)
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)


@given(case=networks_with_endpoints())
@settings(max_examples=80, deadline=None)
def test_returned_path_prices_correctly(case):
    net, s, t = case
    try:
        result = LiangShenRouter(net).route(s, t)
    except NoPathError:
        return
    assert result.path.evaluate_cost(net) == pytest.approx(result.cost)
    assert result.path.source == s
    assert result.path.target == t


@given(
    case=networks_with_endpoints(),
    new_cost=st.floats(0.0, 50.0, allow_nan=False),
    wavelength=st.integers(0, 3),
)
@settings(max_examples=80, deadline=None)
def test_adding_a_channel_never_hurts(case, new_cost, wavelength):
    net, s, t = case
    before = route_cost(lambda: LiangShenRouter(net).route(s, t).cost)
    # Add one channel on some existing link (or a new link s->t).
    augmented = net.copy()
    wavelength = wavelength % net.num_wavelengths
    links = list(augmented.links())
    if links:
        link = links[0]
        if wavelength in link.costs:
            return  # channel exists; replacing could change costs
        tail, head = link.tail, link.head
        costs = dict(link.costs)
        costs[wavelength] = new_cost
        rebuilt = WDMNetwork(net.num_wavelengths, net.conversion(tail))
        for v in net.nodes():
            rebuilt.add_node(v, net.conversion(v))
        for existing in net.links():
            if (existing.tail, existing.head) == (tail, head):
                rebuilt.add_link(tail, head, costs)
            else:
                rebuilt.add_link(existing.tail, existing.head, dict(existing.costs))
        augmented = rebuilt
    else:
        augmented.add_link(s, t, {wavelength: new_cost})
    after = route_cost(lambda: LiangShenRouter(augmented).route(s, t).cost)
    if before is not None:
        assert after is not None
        assert after <= before + 1e-9


@given(case=networks_with_endpoints(), scale=st.floats(0.1, 10.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_scale_equivariance(case, scale):
    net, s, t = case
    before = route_cost(lambda: LiangShenRouter(net).route(s, t).cost)
    scaled = WDMNetwork(net.num_wavelengths, FixedCostConversion(0.0))
    # Scale both link and conversion costs by wrapping the originals.
    from repro.core.conversion import CallableConversion

    for v in net.nodes():
        original = net.conversion(v)
        scaled.add_node(
            v,
            CallableConversion(
                lambda p, q, _m=original: (
                    _m.cost(p, q) * scale if _m.cost(p, q) < math.inf else math.inf
                )
            ),
        )
    for link in net.links():
        scaled.add_link(
            link.tail, link.head, {w: c * scale for w, c in link.costs.items()}
        )
    after = route_cost(lambda: LiangShenRouter(scaled).route(s, t).cost)
    if before is None:
        assert after is None
    else:
        assert after == pytest.approx(before * scale, rel=1e-9, abs=1e-9)


@given(net=wdm_networks())
@settings(max_examples=120, deadline=None)
def test_observation_bounds_hold_universally(net):
    assert build_layered_graph(net).sizes.within_bounds()


@given(net=wdm_networks())
@settings(max_examples=60, deadline=None)
def test_route_tree_consistent_with_single_queries(net):
    router = LiangShenRouter(net)
    source = net.nodes()[0]
    tree = router.route_tree(source)
    for target, path in tree.items():
        single = route_cost(lambda: router.route(source, target).cost)
        assert single == pytest.approx(path.total_cost)
        assert path.evaluate_cost(net) == pytest.approx(path.total_cost)
