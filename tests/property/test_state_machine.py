"""Stateful property test: the wavelength occupancy ledger under churn.

A hypothesis rule-based state machine drives
:class:`~repro.wdm.state.WavelengthState` through arbitrary interleavings
of reservations and releases, mirroring it against a plain Python set.
Invariants: the ledger never double-books, never releases unheld
channels, and its utilization always equals the model's.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.exceptions import ReservationError
from repro.topology.reference import paper_figure1_network
from repro.wdm.state import WavelengthState

# The channel universe of the paper example: 24 concrete channels.
NETWORK = paper_figure1_network()
CHANNELS = sorted(
    (link.tail, link.head, w) for link in NETWORK.links() for w in link.costs
)


class StateLedgerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.state = WavelengthState(paper_figure1_network())
        self.model: set[tuple] = set()

    @rule(channel=st.sampled_from(CHANNELS))
    def reserve_free(self, channel):
        if channel in self.model:
            return
        self.state.reserve_channels([channel])
        self.model.add(channel)

    @rule(channel=st.sampled_from(CHANNELS))
    def reserve_taken_must_fail(self, channel):
        if channel not in self.model:
            return
        try:
            self.state.reserve_channels([channel])
        except ReservationError:
            pass
        else:
            raise AssertionError("double reservation accepted")

    @rule(channel=st.sampled_from(CHANNELS))
    def release_held(self, channel):
        if channel not in self.model:
            return
        self.state.release_channels([channel])
        self.model.discard(channel)

    @rule(channel=st.sampled_from(CHANNELS))
    def release_unheld_must_fail(self, channel):
        if channel in self.model:
            return
        try:
            self.state.release_channels([channel])
        except ReservationError:
            pass
        else:
            raise AssertionError("released a channel that was never held")

    @rule(data=st.data())
    def batch_reserve_atomic(self, data):
        """A batch containing one conflict must change nothing."""
        free = [c for c in CHANNELS if c not in self.model]
        taken = [c for c in CHANNELS if c in self.model]
        if not free or not taken:
            return
        batch = [
            data.draw(st.sampled_from(free)),
            data.draw(st.sampled_from(taken)),
        ]
        before = self.state.num_occupied
        try:
            self.state.reserve_channels(batch)
        except ReservationError:
            pass
        else:
            raise AssertionError("conflicting batch accepted")
        assert self.state.num_occupied == before

    @invariant()
    def ledger_matches_model(self):
        assert self.state.num_occupied == len(self.model)
        for tail, head, w in CHANNELS:
            expected_free = (tail, head, w) not in self.model
            assert self.state.is_free(tail, head, w) == expected_free

    @invariant()
    def utilization_consistent(self):
        expected = len(self.model) / len(CHANNELS)
        assert math.isclose(self.state.utilization, expected)


TestStateLedger = StateLedgerMachine.TestCase
TestStateLedger.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
