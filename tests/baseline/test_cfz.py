"""Unit tests for the CFZ baseline router."""

import pytest

from repro.baseline.cfz import CFZRouter
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError


class TestBothEngines:
    @pytest.mark.parametrize("engine", ["dense", "heap"])
    def test_tiny_optimum(self, tiny_net, engine):
        result = CFZRouter(tiny_net, engine=engine).route("a", "c")
        assert result.cost == pytest.approx(2.5)
        assert result.path.nodes() == ["a", "b", "c"]

    @pytest.mark.parametrize("engine", ["dense", "heap"])
    def test_no_path(self, engine):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["a", "b"])
        with pytest.raises(NoPathError):
            CFZRouter(net, engine=engine).route("a", "b")

    @pytest.mark.parametrize("engine", ["dense", "heap"])
    def test_paths_validate(self, paper_net, engine):
        router = CFZRouter(paper_net, engine=engine)
        for s in (1, 2, 5):
            for t in (6, 7):
                result = router.route(s, t)
                result.path.validate(paper_net)

    def test_engines_agree(self, paper_net):
        dense = CFZRouter(paper_net, engine="dense")
        heap = CFZRouter(paper_net, engine="heap")
        for s in range(1, 7):
            for t in range(2, 8):
                if s == t:
                    continue
                try:
                    a = dense.route(s, t).cost
                except NoPathError:
                    a = None
                try:
                    b = heap.route(s, t).cost
                except NoPathError:
                    b = None
                assert a == b or a == pytest.approx(b)

    def test_unknown_engine_rejected(self, paper_net):
        with pytest.raises(ValueError):
            CFZRouter(paper_net, engine="quantum")


class TestAgainstLiangShen:
    @pytest.mark.parametrize("trial", range(20))
    def test_random_networks_same_optimum(self, trial):
        from tests.conftest import make_random_net

        net = make_random_net(500 + trial)
        nodes = net.nodes()
        ls = LiangShenRouter(net)
        cfz = CFZRouter(net)
        for s, t in [(nodes[0], nodes[-1]), (nodes[-1], nodes[0])]:
            try:
                expected = ls.route(s, t).cost
            except NoPathError:
                expected = None
            try:
                actual = cfz.route(s, t).cost
            except NoPathError:
                actual = None
            if expected is None:
                assert actual is None
            else:
                assert actual == pytest.approx(expected)

    def test_stats_report_wg_sizes(self, paper_net):
        result = CFZRouter(paper_net).route(1, 7)
        assert result.stats.sizes.num_layer_nodes == 4 * 7 + 2
        assert result.stats.settled > 0
