"""Unit tests for the CFZ wavelength graph construction."""

import pytest

from repro.baseline.wavelength_graph import build_wavelength_graph
from repro.core.conversion import NoConversion
from repro.core.network import WDMNetwork


class TestShape:
    def test_node_count_is_kn_plus_2(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        assert wg.graph.num_nodes == 4 * 7 + 2

    def test_link_edges_one_per_channel(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        assert wg.num_link_edges == paper_net.total_link_wavelengths == 24

    def test_conversion_edges_over_full_universe(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        # Full conversion at 6 nodes: k(k-1) = 12 each; node 3 has a
        # matrix model missing one pair: 11.
        assert wg.num_conversion_edges == 6 * 12 + 11

    def test_no_conversion_model_no_edges(self):
        net = WDMNetwork(num_wavelengths=3, default_conversion=NoConversion())
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 1.0})
        wg = build_wavelength_graph(net, "a", "b")
        assert wg.num_conversion_edges == 0

    def test_terminal_fan(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        assert wg.graph.out_degree(wg.source_id) == 4  # one per λ
        into_sink = sum(
            1 for _t, h, _w, _tag in wg.graph.edges() if h == wg.sink_id
        )
        assert into_sink == 4

    def test_same_endpoints_rejected(self, paper_net):
        with pytest.raises(ValueError):
            build_wavelength_graph(paper_net, 1, 1)


class TestStateIds:
    def test_round_trip(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        for node in paper_net.nodes():
            for lam in range(4):
                state = wg.state_id(node, lam)
                assert wg.decode_state(state) == (node, lam)

    def test_virtual_terminal_not_decodable(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        with pytest.raises(ValueError):
            wg.decode_state(wg.source_id)

    def test_link_edge_weights(self, paper_net):
        wg = build_wavelength_graph(paper_net, 1, 7)
        # Every edge from (1, λ1) to (2, λ1) carries w(<1,2>, λ1) = 1.0.
        src = wg.state_id(1, 0)
        dst = wg.state_id(2, 0)
        weights = [
            w for h, w, _tag in wg.graph.neighbors(src) if h == dst
        ]
        assert weights == [1.0]
