"""Unit tests for the brute-force oracle itself."""

import pytest

from repro.baseline.brute_force import brute_force_route
from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.exceptions import NoPathError, UnknownNodeError


class TestOracle:
    def test_tiny_optimum(self, tiny_net):
        path = brute_force_route(tiny_net, "a", "c")
        assert path.total_cost == pytest.approx(2.5)
        assert path.nodes() == ["a", "b", "c"]
        path.validate(tiny_net)

    def test_single_hop(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 3.0})
        path = brute_force_route(net, "a", "b")
        assert path.total_cost == pytest.approx(3.0)
        assert path.num_hops == 1

    def test_no_path(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["a", "b"])
        with pytest.raises(NoPathError):
            brute_force_route(net, "a", "b")

    def test_same_endpoints_rejected(self, tiny_net):
        with pytest.raises(ValueError):
            brute_force_route(tiny_net, "a", "a")

    def test_unknown_node(self, tiny_net):
        with pytest.raises(UnknownNodeError):
            brute_force_route(tiny_net, "ghost", "c")

    def test_wavelength_continuity(self):
        net = WDMNetwork(num_wavelengths=2, default_conversion=NoConversion())
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        net.add_link("b", "c", {1: 1.0})
        with pytest.raises(NoPathError):
            brute_force_route(net, "a", "c")

    def test_walk_through_target_and_back(self):
        """A walk may pass through the target and return more cheaply.

        Construct: a -> t on λ1 costs 10; a -> t on λ2 costs 1, but λ2
        arrives "badly" — actually verify the simpler property: passing
        THROUGH an intermediate the brute force still finds multi-hop
        optimum over the direct link.
        """
        net = WDMNetwork(num_wavelengths=1, default_conversion=FixedCostConversion(0.0))
        net.add_nodes(["a", "m", "t"])
        net.add_link("a", "t", {0: 10.0})
        net.add_link("a", "m", {0: 1.0})
        net.add_link("m", "t", {0: 1.0})
        path = brute_force_route(net, "a", "t")
        assert path.total_cost == pytest.approx(2.0)

    def test_zero_cost_edges_terminate(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=FixedCostConversion(0.0))
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 0.0})
        net.add_link("b", "a", {0: 0.0})
        net.add_link("b", "c", {0: 0.0})
        path = brute_force_route(net, "a", "c")
        assert path.total_cost == 0.0
