#!/usr/bin/env python3
"""Survivable provisioning: working + backup semilightpath pairs.

Extends the paper's routing into the classic 1+1 protection setting:
every connection gets a fiber-disjoint backup so a single cable cut never
drops it.  Shows the K-shortest alternatives the restoration planner can
fall back on, and the conversion-budget profile for the working path.

Run:  python examples/survivable_provisioning.py
"""

from repro import conversion_cost_profile, k_shortest_semilightpaths
from repro.core.wavelengths import wavelength_name
from repro.exceptions import NoPathError
from repro.topology.reference import nsfnet_network
from repro.wdm.protection import route_disjoint_pair


def show(label, path):
    route = " -> ".join(
        f"{h.tail}[{wavelength_name(h.wavelength)}]" for h in path.hops
    ) + f" -> {path.target}"
    print(f"  {label}: cost {path.total_cost:g}  {route}")


def main() -> None:
    net = nsfnet_network(num_wavelengths=4)
    print(f"NSFNET, k = 4 wavelengths\n")

    for source, target in [("WA", "NY"), ("CA2", "NJ"), ("UT", "GA")]:
        print(f"{source} -> {target}:")
        try:
            pair = route_disjoint_pair(net, source, target, disjointness="link")
        except NoPathError:
            print("  no fiber-disjoint pair (trap topology or exhaustion)")
            continue
        show("working", pair.working)
        show("backup ", pair.backup)
        print(
            f"  fiber-disjoint: {not pair.shares_links()}, "
            f"combined cost {pair.total_cost:g}"
        )

        alternatives = k_shortest_semilightpaths(net, source, target, k=3)
        print(f"  restoration alternatives (K=3): "
              f"{[round(p.total_cost, 2) for p in alternatives]}")

        profile = conversion_cost_profile(net, source, target)
        curve = ", ".join(f"q={q}: {cost:g}" for q, cost in profile)
        print(f"  conversion budget profile: {curve}\n")


if __name__ == "__main__":
    main()
