#!/usr/bin/env python3
"""The Figures 5-6 phenomenon: an optimal semilightpath revisiting a node.

The paper stresses (end of Section II, Figs. 5-6) that a semilightpath may
legally pass through a node more than once on different wavelengths, and
that Restrictions 1-2 (Theorem 2) are exactly what rules this out.  This
example constructs a minimal network where the unique optimum revisits
node 'w', shows the routers finding it, then applies the restrictions and
shows the optimum become node-simple.

Run:  python examples/node_revisit.py
"""

from repro import LiangShenRouter
from repro.core.conversion import FixedCostConversion, MatrixConversion
from repro.core.network import WDMNetwork
from repro.core.restrictions import check_restriction1, check_restriction2
from repro.core.wavelengths import wavelength_name


def build_network() -> WDMNetwork:
    """s --λ1--> w --λ1--> a --λ2--> w --λ2--> t, plus a costly s->t link.

    Node w cannot convert at all, node a converts λ1->λ2 cheaply: the only
    cheap route threads through w twice.
    """
    net = WDMNetwork(num_wavelengths=2, default_conversion=MatrixConversion({}))
    for node in ("s", "w", "a", "t"):
        net.add_node(node)
    net.set_conversion("a", MatrixConversion({(0, 1): 0.1}))
    net.add_link("s", "w", {0: 1.0})
    net.add_link("w", "a", {0: 1.0})
    net.add_link("a", "w", {1: 1.0})
    net.add_link("w", "t", {1: 1.0})
    net.add_link("s", "t", {0: 100.0})
    return net


def show(path) -> None:
    route = " -> ".join(
        f"{h.tail}[{wavelength_name(h.wavelength)}]" for h in path.hops
    ) + f" -> {path.target}"
    print(f"  route: {route}")
    print(f"  cost:  {path.total_cost:g}")
    print(f"  node-simple: {path.is_node_simple}")
    visits = {}
    for node in path.nodes():
        visits[node] = visits.get(node, 0) + 1
    repeats = {node: c for node, c in visits.items() if c > 1}
    if repeats:
        print(f"  revisited nodes: {repeats}")


def main() -> None:
    net = build_network()
    print("Unrestricted cost structure (node w cannot convert):")
    violations = check_restriction1(net)
    print(f"  Restriction 1 violations: {violations}")
    result = LiangShenRouter(net).route("s", "t")
    show(result.path)

    print("\nNow grant every node cheap full conversion (Restrictions 1-2 hold):")
    for node in net.nodes():
        net.set_conversion(node, FixedCostConversion(0.1))
    assert check_restriction1(net) == []
    holds, max_conv, min_link = check_restriction2(net)
    print(f"  Restriction 2: max conversion {max_conv} < min link {min_link}: {holds}")
    result = LiangShenRouter(net).route("s", "t")
    show(result.path)
    print("\nTheorem 2 in action: with the restrictions satisfied the optimum")
    print("is node-simple (s -> w -> t with one converter setting at w).")


if __name__ == "__main__":
    main()
