#!/usr/bin/env python3
"""Scaling study: the Section III-C comparison, regenerated.

Sweeps n in the paper's favorite regime (m = O(n), k = ceil(log2 n),
bounded degree), times the Liang-Shen router against the CFZ wavelength-
graph algorithm (with the dense O(N^2) extract-min its published bound
assumes), and fits the empirical exponents.  Expected: ours near-linear,
CFZ near-quadratic, speedup growing roughly like n / log n.

Run:  python examples/scaling_study.py           (quick sweep)
      python examples/scaling_study.py --full    (adds n=1024; slower)
"""

import sys

from repro.analysis.comparison import run_comparison
from repro.analysis.complexity import fit_power_law


def main() -> None:
    ns = [64, 128, 256, 512]
    if "--full" in sys.argv:
        ns.append(1024)

    print("Section III-C regime: m = O(n), k = ceil(log2 n), d <= 4")
    print(f"sweeping n over {ns} (2 queries per size, best of 2 repeats)\n")
    rows = run_comparison(ns, queries_per_n=2, repeats=2, seed=7)

    header = (
        f"{'n':>6s} {'m':>6s} {'k':>3s} {'d':>3s} "
        f"{'liang-shen':>12s} {'cfz (dense)':>12s} {'speedup':>8s} {'same opt?':>9s}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.n:6d} {row.m:6d} {row.k:3d} {row.d:3d} "
            f"{row.liang_shen_seconds * 1e3:10.2f}ms "
            f"{row.cfz_seconds * 1e3:10.2f}ms "
            f"{row.speedup:8.2f} {'yes' if row.costs_agree else 'NO':>9s}"
        )

    ls_fit = fit_power_law(ns, [r.liang_shen_seconds for r in rows])
    cfz_fit = fit_power_law(ns, [r.cfz_seconds for r in rows])
    print(
        f"\nfitted: liang-shen ~ n^{ls_fit.exponent:.2f} "
        f"(R²={ls_fit.r_squared:.3f}), "
        f"cfz ~ n^{cfz_fit.exponent:.2f} (R²={cfz_fit.r_squared:.3f})"
    )
    print(
        "\nThe paper claims an Ω(n / max{k, d, log n}) improvement in this\n"
        "regime — e.g. O(n log² n) vs O(n² log n).  The growing speedup\n"
        "column and the ~1-exponent gap between the fits are that claim's\n"
        "empirical shape."
    )


if __name__ == "__main__":
    main()
