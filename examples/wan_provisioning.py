#!/usr/bin/env python3
"""WAN provisioning: dynamic circuit switching on NSFNET.

The paper's motivating scenario: connection requests arrive on-line, each
needs wavelengths reserved end-to-end, and occupied channels fragment the
spectrum so pure lightpaths start blocking.  This example drives Poisson
traffic over the 14-node NSFNET backbone and compares

* the optimal-semilightpath provisioner (this paper's router on the
  residual network), against
* classic fixed-shortest-path + first-fit wavelength (no conversion),

on identical traffic traces across an offered-load sweep.

Run:  python examples/wan_provisioning.py
"""

from repro.topology.reference import nsfnet_network
from repro.wdm import (
    DynamicSimulation,
    FirstFitProvisioner,
    SemilightpathProvisioner,
    TrafficGenerator,
)

WAVELENGTHS = 4
REQUESTS = 600
LOADS = [10.0, 20.0, 30.0, 45.0, 60.0]


def main() -> None:
    network = nsfnet_network(num_wavelengths=WAVELENGTHS)
    print(
        f"NSFNET: {network.num_nodes} nodes, {network.num_links} directed "
        f"links, k = {WAVELENGTHS} wavelengths, "
        f"{network.total_link_wavelengths} channels total\n"
    )
    header = (
        f"{'load (E)':>9s} {'policy':>14s} {'blocked':>8s} {'P_block':>8s} "
        f"{'hops/conn':>10s} {'conv/conn':>10s} {'peak act.':>10s}"
    )
    print(header)
    print("-" * len(header))

    for load in LOADS:
        trace = TrafficGenerator(
            network.nodes(), arrival_rate=load, mean_holding=1.0, seed=1234
        ).generate(REQUESTS)
        for name, factory in [
            ("semilightpath", SemilightpathProvisioner),
            ("first-fit", FirstFitProvisioner),
        ]:
            stats = DynamicSimulation(factory(network)).run(trace)
            print(
                f"{load:9.1f} {name:>14s} {stats.blocked:8d} "
                f"{stats.blocking_probability:8.3f} {stats.mean_hops:10.2f} "
                f"{stats.mean_conversions:10.2f} {stats.peak_active:10d}"
            )
        print()

    print(
        "Reading: the semilightpath policy admits everything first-fit\n"
        "admits and converts wavelengths mid-route when the spectrum is\n"
        "fragmented -- its blocking probability is never higher, and its\n"
        "conversions-per-connection rise with load."
    )


if __name__ == "__main__":
    main()
