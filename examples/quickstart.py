#!/usr/bin/env python3
"""Quickstart: route on the paper's own example network (Figs. 1-4).

Builds the 7-node WDM network of Figure 1 (exact per-link wavelength
availability from Section III-A), routes a few semilightpaths with the
Liang-Shen router, and prints the wavelength assignment and converter
settings the paper's problem statement asks for.

Run:  python examples/quickstart.py
"""

from repro import LiangShenRouter, NoPathError, paper_figure1_network
from repro.core.wavelengths import wavelength_name


def describe(path) -> str:
    hops = " -> ".join(
        f"{hop.tail}--[{wavelength_name(hop.wavelength)}]-->{hop.head}"
        for hop in path.hops
    )
    if path.is_lightpath:
        kind = "lightpath (single wavelength end-to-end)"
    else:
        switches = ", ".join(
            f"at node {c.node}: {wavelength_name(c.from_wavelength)} -> "
            f"{wavelength_name(c.to_wavelength)}"
            for c in path.conversions()
        )
        kind = f"semilightpath with converter settings [{switches}]"
    return f"{hops}\n    cost {path.total_cost:g}, {kind}"


def main() -> None:
    network = paper_figure1_network()
    print(f"Paper Figure 1 network: {network}")
    print(f"  max degree d = {network.max_degree}, "
          f"k0 = {network.max_link_wavelengths}, "
          f"channels = {network.total_link_wavelengths}\n")

    router = LiangShenRouter(network)

    for source, target in [(1, 7), (1, 6), (5, 7), (4, 3)]:
        try:
            result = router.route(source, target)
        except NoPathError:
            print(f"{source} -> {target}: unreachable")
            continue
        print(f"{source} -> {target}:")
        print(f"    {describe(result.path)}")
        sizes = result.stats.sizes
        print(
            f"    auxiliary graph: |V'|={sizes.num_layer_nodes} "
            f"(bound {sizes.bound_layer_nodes}), "
            f"|E'|={sizes.num_layer_edges} (bound {sizes.bound_layer_edges})\n"
        )

    print("All-pairs optimal semilightpaths (Corollary 1):")
    all_pairs = router.route_all_pairs()
    reachable = sorted(all_pairs.paths)
    print(f"  {len(reachable)} reachable ordered pairs")
    costs = sorted(all_pairs.paths.items(), key=lambda kv: -kv[1].total_cost)[:3]
    for (s, t), path in costs:
        print(f"  most expensive: {s} -> {t} at cost {path.total_cost:g}")


if __name__ == "__main__":
    main()
