#!/usr/bin/env python3
"""Distributed routing: Theorem 3's protocol on a simulated control network.

Each physical node simulates its bipartite fragment G_v of the auxiliary
graph G_{s,t}; distance proposals travel only over physical links (the
E_org edges), and conversion-edge relaxations are free local computation.
The example runs the protocol on the ARPANET-like WAN, checks the answer
against the centralized router, and prints the message/round counts next
to Theorem 3's O(km) / O(kn) budgets.

Run:  python examples/distributed_routing.py
"""

from repro import LiangShenRouter
from repro.distributed import DistributedSemilightpathRouter
from repro.topology.reference import arpanet_network


def main() -> None:
    network = arpanet_network(num_wavelengths=6)
    n, m, k = network.num_nodes, network.num_links, network.num_wavelengths
    print(f"ARPANET-like WAN: n={n}, m={m}, k={k}\n")

    central = LiangShenRouter(network)
    distributed = DistributedSemilightpathRouter(network)

    header = (
        f"{'pair':>10s} {'cost':>7s} {'match':>6s} {'messages':>9s} "
        f"{'km':>6s} {'rounds':>7s} {'kn':>5s} {'max link load':>14s}"
    )
    print(header)
    print("-" * len(header))
    for source, target in [(0, 19), (0, 10), (5, 16), (19, 0), (12, 3)]:
        result = distributed.route(source, target)
        reference = central.route(source, target)
        stats = result.stats
        match = "yes" if abs(result.cost - reference.cost) < 1e-9 else "NO!"
        print(
            f"{source:>4d}->{target:<4d} {result.cost:7.2f} {match:>6s} "
            f"{stats.total_messages:9d} {k * m:6d} {stats.rounds:7d} "
            f"{k * n:5d} {stats.max_link_load:14d}"
        )

    print(
        "\nEvery query matches the centralized optimum; messages stay within"
        "\na small constant of Theorem 3's km budget and rounds within kn."
    )


if __name__ == "__main__":
    main()
