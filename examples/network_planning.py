#!/usr/bin/env python3
"""Offline network planning and failure analysis on COST239.

A network operator's workflow end-to-end:

1. plan a static demand matrix onto the European COST239 mesh
   (sequential RWA with ordering heuristics and restarts),
2. load the plan into a live provisioner,
3. stress-test every single fiber cut, measuring reactive-restoration
   coverage.

Run:  python examples/network_planning.py
"""

import itertools
import random

from repro.topology.reference import COST239_FIBERS, cost239_network
from repro.wdm import Demand, SemilightpathProvisioner, StaticPlanner, restore


def main() -> None:
    net = cost239_network(num_wavelengths=4)
    print(f"COST239: {net.num_nodes} nodes, {net.num_links} directed links, k=4\n")

    # 1. Build a demand matrix: one circuit between 30 random city pairs.
    rng = random.Random(99)
    pairs = rng.sample(list(itertools.permutations(net.nodes(), 2)), 30)
    demands = [Demand(s, t) for s, t in pairs]

    print("Static planning (orderings compared):")
    best_plan = None
    for ordering, restarts in [("shortest-first", 1), ("longest-first", 1), ("random", 6)]:
        plan = StaticPlanner(net, ordering=ordering, restarts=restarts, seed=1).plan(demands)
        print(
            f"  {ordering:>15s} x{restarts}: carried "
            f"{plan.circuits_carried}/{plan.circuits_requested} "
            f"at total cost {plan.total_cost:g}"
        )
        if best_plan is None or plan.circuits_carried > best_plan.circuits_carried:
            best_plan = plan

    # 2. Load the winning plan into a live provisioner.
    prov = SemilightpathProvisioner(net)
    for paths in best_plan.routed.values():
        for path in paths:
            prov.admit_path(path)
    print(
        f"\nLoaded plan: {prov.num_active} live connections, "
        f"{prov.state.utilization:.0%} channel utilization"
    )

    # 3. Single-fiber-cut sweep.
    print("\nFiber-cut stress test (reactive restoration):")
    worst = None
    total_affected = total_restored = 0
    for tail, head in COST239_FIBERS:
        trial = SemilightpathProvisioner(net)
        for paths in best_plan.routed.values():
            for path in paths:
                trial.admit_path(path)
        report = restore(trial, tail, head)
        total_affected += len(report.affected)
        total_restored += len(report.restored)
        if worst is None or report.restoration_ratio < worst[1]:
            worst = ((tail, head), report.restoration_ratio, len(report.affected))
    ratio = total_restored / total_affected if total_affected else 1.0
    print(f"  cuts simulated: {len(COST239_FIBERS)}")
    print(f"  connections affected in total: {total_affected}")
    print(f"  restored: {total_restored} ({ratio:.0%})")
    fiber, worst_ratio, hit = worst
    print(
        f"  most critical fiber: {fiber[0]}–{fiber[1]} "
        f"({hit} connections hit, {worst_ratio:.0%} restored)"
    )


if __name__ == "__main__":
    main()
