#!/usr/bin/env python3
"""Operations analytics: criticality, fairness, and event auditing.

A network-operations view built entirely from the library's analysis
modules:

1. rank the channels and fibers whose loss would hurt a key route most
   (criticality / regret analysis),
2. run loaded traffic with a measurement window (warmup discard) and an
   event log,
3. report blocking fairness — which pairs absorb the rejections, and how
   concentrated the pain is (Gini).

Run:  python examples/operations_analytics.py
"""

from repro.analysis.criticality import channel_criticality, fiber_criticality
from repro.analysis.fairness import blocking_concentration, worst_pairs
from repro.core.wavelengths import wavelength_name
from repro.topology.reference import nsfnet_network
from repro.wdm.events import EventLog
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator


def main() -> None:
    net = nsfnet_network(num_wavelengths=3)
    print("NSFNET, k = 3\n")

    # 1. Criticality for the flagship route.
    print("Criticality for WA -> NY (regret = cost increase if lost):")
    for crit in channel_criticality(net, "WA", "NY"):
        tail, head, lam = crit.resource
        regret = "DISCONNECTS" if crit.disconnects else f"+{crit.regret:g}"
        print(f"  channel {tail}->{head} {wavelength_name(lam)}: {regret}")
    worst_fiber = fiber_criticality(net, "WA", "NY")[0]
    print(f"  worst fiber: {worst_fiber.resource}  regret +{worst_fiber.regret:g}\n")

    # 2. Loaded run with warmup and event log.
    log = EventLog()
    trace = TrafficGenerator(net.nodes(), 40.0, 1.0, seed=91).generate(800)
    sim = DynamicSimulation(SemilightpathProvisioner(net), observer=log, warmup=200)
    stats = sim.run(trace)
    print(
        f"Traffic: 800 requests (200 warmup discarded) at 40 E\n"
        f"  measured: offered={stats.offered} blocked={stats.blocked} "
        f"P_block={stats.blocking_probability:.3f}\n"
        f"  events logged: {log.num_events} ({log.summary()})\n"
    )

    # 3. Fairness.
    print("Blocking fairness:")
    print(f"  concentration (Gini over blocked pairs): "
          f"{blocking_concentration(stats):.2f}")
    print("  most-blocked pairs:")
    for (s, t), count in worst_pairs(stats, top=5):
        print(f"    {s} -> {t}: {count} rejections")


if __name__ == "__main__":
    main()
