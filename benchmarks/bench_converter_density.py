"""ABL-CONV — ablation: sparse converter placement.

Extension experiment: sweep the fraction of nodes equipped with
wavelength converters from 0 (pure lightpath network) to 1 (the paper's
full-conversion example setting) and measure dynamic blocking probability
on a k₀-bounded WAN under fixed traffic.  The classic result this should
(and does) reproduce: most of the benefit of conversion arrives at low
densities — a few well-placed converters capture the bulk of the win.
"""

from __future__ import annotations

from repro.core.conversion import FixedCostConversion
from repro.topology.converters import sparse_conversion_network
from repro.topology.generators import degree_bounded_network
from repro.topology.wavelength_assign import random_wavelengths
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator

DENSITIES = [0.0, 0.25, 0.5, 1.0]


def _base_network():
    # Moderate availability so wavelength continuity actually binds.
    return degree_bounded_network(
        24,
        6,
        max_degree=4,
        seed=26,
        wavelength_policy=random_wavelengths(6, availability=0.5),
        conversion=FixedCostConversion(0.3),
    )


def test_blocking_vs_converter_density(benchmark, report):
    base = _base_network()
    trace = TrafficGenerator(base.nodes(), 25.0, 1.0, seed=27).generate(400)
    model = FixedCostConversion(0.3)
    rows = []
    for density in DENSITIES:
        net = sparse_conversion_network(base, density, model, seed=28)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        rows.append((density, stats))
    table = "\n".join(
        f"density={density:4.2f}  P_block={stats.blocking_probability:6.3f}  "
        f"conv/conn={stats.mean_conversions:5.2f}"
        for density, stats in rows
    )
    report("ABL-CONV: blocking vs converter density (n=24, k=6)", table)

    blocking = [stats.blocking_probability for _d, stats in rows]
    # Full conversion must not block more than no conversion; the curve
    # need not be strictly monotone (placements are random) but the
    # endpoints must order correctly.
    assert blocking[-1] <= blocking[0]
    # Conversions are actually used once converters exist.
    assert rows[-1][1].mean_conversions > 0

    net = sparse_conversion_network(base, 0.5, model, seed=28)
    benchmark(
        lambda: DynamicSimulation(SemilightpathProvisioner(net)).run(trace[:100])
    )
    benchmark.extra_info["curve"] = [
        {"density": d, "blocking": s.blocking_probability} for d, s in rows
    ]


def test_diminishing_returns(benchmark, report):
    """The 0 -> 0.5 density step should capture most of the 0 -> 1 gain."""
    base = _base_network()
    trace = TrafficGenerator(base.nodes(), 25.0, 1.0, seed=29).generate(400)
    model = FixedCostConversion(0.3)

    def blocking(density):
        net = sparse_conversion_network(base, density, model, seed=30)
        return DynamicSimulation(SemilightpathProvisioner(net)).run(
            trace
        ).blocking_probability

    none, half, full = blocking(0.0), blocking(0.5), blocking(1.0)
    report(
        "ABL-CONV: diminishing returns",
        f"P_block: none={none:.3f}  half={half:.3f}  full={full:.3f}",
    )
    total_gain = none - full
    if total_gain > 0.01:  # only meaningful when conversion helps at all
        assert (none - half) >= 0.5 * total_gain
    benchmark(lambda: blocking(0.5))
