"""SERVE — the routing service's warm-cache amortization and correctness.

Acceptance for the serving subsystem: on a static network, repeated
queries through :class:`~repro.service.RoutingService` must run at least
5x faster than constructing a :class:`LiangShenRouter` per query (in
practice the gap is orders of magnitude — a warm query is one dict
lookup), and the answers must stay *identical* to per-query routing
costs.  After an invalidation, the cache must return byte-identical
trees to a freshly built cold cache.
"""

from __future__ import annotations

import math
import time

from benchmarks.conftest import sparse_wan
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.service import EpochRouterCache, RoutingService


def _query_pairs(net, repeats: int):
    nodes = net.nodes()
    sources = nodes[:4]
    pairs = [(s, t) for s in sources for t in nodes if s != t]
    return pairs * repeats


def test_warm_cache_beats_per_query_construction(report):
    net = sparse_wan(72, seed=41)
    pairs = _query_pairs(net, repeats=3)

    with RoutingService(net, workers=0) as service:
        start = time.perf_counter()
        warm_costs = [service.cost(s, t) for s, t in pairs]
        warm_time = time.perf_counter() - start

        start = time.perf_counter()
        cold_costs = []
        for s, t in pairs:
            router = LiangShenRouter(net)  # per-query construction
            try:
                cold_costs.append(router.route(s, t).cost)
            except NoPathError:
                cold_costs.append(math.inf)
        cold_time = time.perf_counter() - start

        snap = service.metrics_snapshot()

    speedup = cold_time / warm_time
    report(
        "SERVE: warm RoutingService vs per-query router construction "
        f"(n=72, {len(pairs)} queries)",
        f"warm cache : {warm_time * 1e3:8.2f} ms  "
        f"(hits={snap['cache.hits']} misses={snap['cache.misses']})\n"
        f"per-query  : {cold_time * 1e3:8.2f} ms  (rebuilds G_(s,t) each time)\n"
        f"speedup    : {speedup:6.1f}x",
    )
    assert warm_costs == cold_costs  # identical optima
    assert speedup >= 5.0  # acceptance floor; typically far higher


def test_invalidated_cache_byte_identical_to_cold(report):
    net = sparse_wan(48, seed=42)
    nodes = net.nodes()

    warm = EpochRouterCache(net)
    for source in nodes:
        warm.tree(source)  # fully warm
    warm.invalidate()

    start = time.perf_counter()
    cold = EpochRouterCache(net)
    mismatches = sum(
        1 for source in nodes if warm.tree(source) != cold.tree(source)
    )
    elapsed = time.perf_counter() - start

    report(
        "SERVE: post-invalidation equivalence (n=48, all sources)",
        f"compared {len(nodes)} trees in {elapsed * 1e3:.1f} ms: "
        f"{mismatches} mismatches (epoch {warm.epoch}, "
        f"rebuilds {warm.rebuilds})",
    )
    assert mismatches == 0
    assert warm.epoch == 1 and warm.rebuilds == 2
