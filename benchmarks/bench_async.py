"""ASYNC — the asynchrony tax: termination detection overhead.

Extension experiment: the synchronous router detects quiescence for free
(round structure); the asynchronous router must pay acknowledgement
traffic for Dijkstra–Scholten termination detection.  Measure the
proposal/ack split and the overhead factor vs the synchronous execution,
plus Chandy–Misra on the raw physical graph as the cited reference point.
"""

from __future__ import annotations

from repro.distributed.chandy_misra import ChandyMisraSSSP
from repro.distributed.semilightpath_async import AsyncSemilightpathRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from benchmarks.conftest import sparse_wan


def test_ack_overhead(benchmark, report):
    rows = []
    for n in (32, 64):
        net = sparse_wan(n, seed=70)
        nodes = net.nodes()
        sync_result = DistributedSemilightpathRouter(net).route(nodes[0], nodes[-1])
        async_result = AsyncSemilightpathRouter(net, seed=1).route(nodes[0], nodes[-1])
        assert abs(sync_result.cost - async_result.cost) < 1e-9
        rows.append(
            (
                n,
                sync_result.stats.total_messages,
                async_result.stats.total_messages,
                async_result.stats.total_messages / sync_result.stats.total_messages,
            )
        )
    table = "\n".join(
        f"n={n:4d}  sync={s:6d} msgs   async={a:6d} msgs   overhead={ratio:4.1f}x"
        for n, s, a, ratio in rows
    )
    report("ASYNC: termination-detection message overhead", table)
    # Proposals are acked 1:1, and async improvement interleavings differ;
    # the overhead should stay within a small factor.
    assert all(ratio < 8.0 for _n, _s, _a, ratio in rows)

    net = sparse_wan(64, seed=70)
    nodes = net.nodes()
    router = AsyncSemilightpathRouter(net, seed=1)
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in rows]
    result = benchmark(lambda: router.route(nodes[0], nodes[-1]))
    assert result.stats.total_messages % 2 == 0


def test_chandy_misra_reference(benchmark, report):
    """CM on the physical graph (the algorithm Theorem 3 cites)."""
    net = sparse_wan(96, seed=71)
    triples = [
        (link.tail, link.head, min(link.costs.values()))
        for link in net.links()
        if link.costs
    ]
    cm = ChandyMisraSSSP(net.nodes(), triples, seed=2)
    dist, stats = benchmark(lambda: cm.run(net.nodes()[0]))
    reachable = sum(1 for v in dist.values() if v < float("inf"))
    report(
        "ASYNC: Chandy-Misra SSSP on the physical graph (n=96)",
        f"events={stats.rounds}  messages={stats.total_messages}  "
        f"reachable={reachable}/{net.num_nodes}",
    )
    assert reachable == net.num_nodes
