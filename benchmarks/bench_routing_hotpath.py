"""Hot-path routing benchmark: overlay + flat kernel vs the seed path.

Standalone script (argparse, no pytest) so CI can run it as a smoke job::

    PYTHONPATH=src python benchmarks/bench_routing_hotpath.py --quick

It measures four things and writes ``BENCH_routing.json``:

* **Single-pair warm queries, per kernel** — the seed configuration
  (per-query ``G_{s,t}`` rebuild over an addressable binary heap)
  against the overlay hot path under each raw-speed kernel: ``flat``
  (heapq + scratch reuse), ``bucket`` (Dial bucket queue on the
  lattice-cost overlay), and the forest-batched mode (one exhausted
  run per source through :class:`BatchRouter`, lazily decoded).  Every
  kernel's answers are checked hop-for-hop against the seed path.
* **Restricted crossover** — the Theorem 4 regime: at fixed ``n`` and a
  large wavelength universe ``k``, sweep the per-link bound ``k₀`` and
  compare terminal-free trees on the fused restricted ``G'`` against
  ``G_all`` trees, locating the crossover behind
  ``RESTRICTED_K0_CROSSOVER``.
* **All-pairs fan-out** — serial ``route_all_pairs`` against the
  process-parallel path, with the measured worker count recorded next
  to the machine's CPU count (a 1-CPU container cannot show a parallel
  win; the numbers say so honestly).
* **Fault churn** — an alternating degrade/recover + query stream served
  by two epoch caches: full invalidation (every fault rebuilds
  ``G_all``) against incremental delta-epoch patching (CSR masking +
  warm-run repair).  Both sides answer the identical stream; answers
  are compared hop-for-hop and a sample is certificate-checked against
  the degraded network of the moment.
* **Result identity** — every timed query is cross-checked: exact cost
  equality and identical hop sequences between the seed and hot paths,
  and all-pairs parallel output equal to serial.

``--churn-smoke`` runs only the churn scenario in a time-budgeted loop
(``--churn-seconds``, default 30) and exits nonzero on any
patched-vs-rebuilt mismatch — the CI guardrail for the delta layer.

The exit code reflects **correctness only**: mismatching results exit
nonzero, slow results never do (CI boxes are noisy; timings are data,
not assertions).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import restricted_wan, sparse_wan  # noqa: E402

from repro.core.batch import BatchRouter  # noqa: E402
from repro.core.parallel import route_all_pairs_parallel  # noqa: E402
from repro.core.routing import LiangShenRouter  # noqa: E402
from repro.exceptions import NoPathError  # noqa: E402
from repro.shortestpath.restricted import RESTRICTED_K0_CROSSOVER  # noqa: E402
from repro.faults.injector import FaultInjector  # noqa: E402
from repro.faults.plan import FaultEvent  # noqa: E402
from repro.service.cache import EpochRouterCache  # noqa: E402
from repro.verify.certificate import check_certificate  # noqa: E402


def _try(router, s, t):
    try:
        return router.route(s, t)
    except NoPathError:
        return None


def _check_identity(name, kernel, pairs, reference, candidate, errors):
    """Hop-for-hop identity between two result streams (flat is the law)."""
    for (s, t), ref, got in zip(pairs, reference, candidate):
        if (ref is None) != (got is None):
            errors.append(f"{name}: {kernel}: reachability differs for {s}->{t}")
        elif ref is not None:
            ref_cost, ref_hops = ref
            got_cost, got_hops = got
            if got_cost != ref_cost:
                errors.append(
                    f"{name}: {kernel}: cost differs for {s}->{t}: "
                    f"{ref_cost!r} vs {got_cost!r}"
                )
            elif got_hops != ref_hops:
                errors.append(f"{name}: {kernel}: hop sequence differs for {s}->{t}")


def _view(result):
    """(cost, hops) of a RouteResult / Semilightpath, or None."""
    if result is None:
        return None
    path = getattr(result, "path", result)
    return (path.total_cost, path.hops)


def bench_single_pair(net, name: str) -> tuple[dict, list[str]]:
    """Time the full query stream per kernel against the seed path.

    All overlay kernels must agree hop-for-hop with ``flat`` (and flat
    with the seed); any divergence makes the script exit nonzero.
    """
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]

    seed_router = LiangShenRouter(net, heap="binary", overlay=False)
    flat_router = LiangShenRouter(net)  # overlay + flat
    bucket_router = LiangShenRouter(net, heap="bucket")
    flat_router.layered_graph()  # warm the shared G' before timing
    bucket_router.layered_graph()
    batch_router = BatchRouter(net)  # G_all built here, outside the timing

    start = time.perf_counter()
    seed_results = [_view(_try(seed_router, s, t)) for s, t in pairs]
    t_seed = time.perf_counter() - start

    start = time.perf_counter()
    flat_results = [_view(_try(flat_router, s, t)) for s, t in pairs]
    t_flat = time.perf_counter() - start

    start = time.perf_counter()
    bucket_results = [_view(_try(bucket_router, s, t)) for s, t in pairs]
    t_bucket = time.perf_counter() - start

    # The batched mode serves the same stream source-major: one exhausted
    # kernel run per source, every answer a lazy decode off its forest.
    start = time.perf_counter()
    batched_results = [_view(_try(batch_router, s, t)) for s, t in pairs]
    t_batched = time.perf_counter() - start

    errors: list[str] = []
    _check_identity(name, "overlay_flat", pairs, seed_results, flat_results, errors)
    _check_identity(name, "overlay_bucket", pairs, flat_results, bucket_results, errors)
    _check_identity(name, "forest_batched", pairs, flat_results, batched_results, errors)

    bucket_scale = bucket_router.layered_graph().graph.lattice_scale()
    us = 1e6 / len(pairs)
    return {
        "topology": name,
        "nodes": len(nodes),
        "wavelengths": net.num_wavelengths,
        "queries": len(pairs),
        "seed_rebuild_binary_seconds": t_seed,
        "overlay_flat_seconds": t_flat,
        "speedup": t_seed / t_flat if t_flat > 0 else float("inf"),
        "seed_us_per_query": t_seed * us,
        "hot_us_per_query": t_flat * us,
        "bucket_scale": bucket_scale,
        "kernels": {
            "seed_rebuild_binary": {"us_per_query": t_seed * us},
            "overlay_flat": {
                "us_per_query": t_flat * us,
                "speedup_vs_seed": t_seed / t_flat if t_flat > 0 else float("inf"),
            },
            "overlay_bucket": {
                "us_per_query": t_bucket * us,
                "speedup_vs_seed": t_seed / t_bucket if t_bucket > 0 else float("inf"),
                "bucket_active": bucket_scale is not None,
            },
            "forest_batched": {
                "us_per_query": t_batched * us,
                "speedup_vs_seed": t_seed / t_batched
                if t_batched > 0
                else float("inf"),
                "forests": batch_router.cache_misses,
            },
        },
    }, errors


def bench_all_pairs(net, name: str, workers: int) -> tuple[dict, list[str]]:
    """Serial vs both pool paths, plus the worker-startup cost comparison.

    On a 1-CPU box neither pool path can show a wall-clock win (recorded
    honestly), so the startup comparison carries the asserted claim:
    attaching the shared segment must cost < 10% of what the legacy path
    pays to pickle ``G_all`` once per worker.  That ratio is machine-
    independent — it compares two costs measured on the same box — and a
    violation is a correctness-grade error, not a noisy timing.
    """
    import pickle

    from repro.shortestpath.shared import (
        attach_all_pairs_graph,
        share_all_pairs_graph,
    )

    router = LiangShenRouter(net)
    aux = router.all_pairs_graph()  # warm: all runs share the same G_all

    start = time.perf_counter()
    serial = router.route_all_pairs()
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    via_shared = route_all_pairs_parallel(
        net, workers=workers, aux=aux, shared=True
    )
    t_shared = time.perf_counter() - start

    start = time.perf_counter()
    via_pickled = route_all_pairs_parallel(
        net, workers=workers, aux=aux, shared=False
    )
    t_pickled = time.perf_counter() - start

    # What the legacy spawn/forkserver path pays per worker: the parent
    # pickles the initializer payload (G_all + kernel + hook) once per
    # worker and each child unpickles it — the round trip is the bill.
    # Best-of-5 for both costs: these are microsecond-to-millisecond
    # one-shots, so the minimum is the honest (noise-free) estimate.
    payload_bytes = len(pickle.dumps((aux, "flat", None)))
    t_pickle_cost = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        pickle.loads(pickle.dumps((aux, "flat", None)))
        t_pickle_cost = min(t_pickle_cost, time.perf_counter() - start)

    # What the shared path pays per worker: shm map + header parse +
    # metadata unpickle, independent of the CSR array sizes (the id
    # maps are built lazily, on the worker's first job).
    segment = share_all_pairs_graph(aux)
    try:
        t_attach_cost = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            attached = attach_all_pairs_graph(segment.name)
            t_attach_cost = min(t_attach_cost, time.perf_counter() - start)
            attached.shared_csr.close()
    finally:
        segment.unlink()

    errors: list[str] = []
    serial_view = {p: (v.hops, v.total_cost) for p, v in serial.paths.items()}
    for label, fanned in (("shared", via_shared), ("pickled", via_pickled)):
        fanned_view = {
            p: (v.hops, v.total_cost) for p, v in fanned.paths.items()
        }
        if serial_view != fanned_view:
            errors.append(f"{name}: parallel[{label}] all-pairs differs from serial")
        if serial.stats.settled != fanned.stats.settled:
            errors.append(f"{name}: parallel[{label}] settled-count differs")
    if t_attach_cost >= 0.10 * t_pickle_cost:
        errors.append(
            f"{name}: shared attach ({t_attach_cost * 1e3:.2f} ms) is not "
            f"< 10% of the per-worker pickle cost ({t_pickle_cost * 1e3:.2f} ms)"
        )

    return {
        "topology": name,
        "nodes": len(net.nodes()),
        "pairs_routed": len(serial.paths),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": t_serial,
        "parallel_shared_seconds": t_shared,
        "parallel_pickled_seconds": t_pickled,
        "parallel_speedup": t_serial / t_shared if t_shared > 0 else 0.0,
        "parallel_pickled_speedup": t_serial / t_pickled if t_pickled > 0 else 0.0,
        "pickle_cost_seconds": t_pickle_cost,
        "pickle_payload_bytes": payload_bytes,
        "attach_cost_seconds": t_attach_cost,
        "attach_vs_pickle_ratio": (
            t_attach_cost / t_pickle_cost if t_pickle_cost > 0 else float("inf")
        ),
    }, errors


def bench_restricted_crossover(
    n: int, k: int, k0_values: tuple[int, ...], seed: int = 7
) -> tuple[dict, list[str]]:
    """Theorem 4 sweep: terminal-free ``G'`` trees vs ``G_all`` trees.

    Fixed ``n`` and a large universe ``k``; ``k₀`` (the per-link
    wavelength bound) sweeps across the crossover.  Per point both
    routers answer every one-to-all query (construction excluded — the
    build-time gap is reported separately) and the trees are compared
    hop-for-hop.
    """
    errors: list[str] = []
    rows = []
    for k0 in k0_values:
        net = restricted_wan(n, k, k0, seed=seed)
        fast = LiangShenRouter(net, restricted=True)
        general = LiangShenRouter(net, restricted=False)

        start = time.perf_counter()
        fast.layered_graph()
        t_build_fast = time.perf_counter() - start
        start = time.perf_counter()
        general.all_pairs_graph()
        t_build_general = time.perf_counter() - start

        nodes = net.nodes()
        start = time.perf_counter()
        general_trees = [general.route_tree(s) for s in nodes]
        t_general = time.perf_counter() - start
        start = time.perf_counter()
        fast_trees = [fast.route_tree(s) for s in nodes]
        t_fast = time.perf_counter() - start

        for s, ref, got in zip(nodes, general_trees, fast_trees):
            if ref.keys() != got.keys():
                errors.append(f"restricted k0={k0}: tree targets differ from {s}")
                continue
            for t in ref:
                if ref[t].hops != got[t].hops:
                    errors.append(
                        f"restricted k0={k0}: hops differ for {s}->{t}"
                    )
                    break

        rows.append(
            {
                "k0": k0,
                "measured_k0": net.max_link_wavelengths,
                "aux_nodes_restricted": fast.layered_graph().graph.num_nodes,
                "aux_nodes_general": general.all_pairs_graph().graph.num_nodes,
                "build_restricted_seconds": t_build_fast,
                "build_general_seconds": t_build_general,
                "restricted_us_per_tree": t_fast / len(nodes) * 1e6,
                "general_us_per_tree": t_general / len(nodes) * 1e6,
                "tree_speedup": t_general / t_fast if t_fast > 0 else float("inf"),
            }
        )
    return {
        "n": n,
        "k": k,
        "crossover_constant": RESTRICTED_K0_CROSSOVER,
        "rows": rows,
    }, errors


def _churn_schedule(net, events: int, queries_per_event: int):
    """Deterministic alternating degrade/recover stream with query pairs.

    Both cache configurations replay exactly this schedule, so their
    timings and answers are directly comparable.
    """
    channels = [
        (link.tail, link.head, w)
        for link in net.links()
        for w in sorted(link.costs)
    ]
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    schedule = []
    for i in range(events):
        channel = channels[(i * 7919) % len(channels)]
        for kind in ("channel_fail", "channel_recover"):
            queries = [
                pairs[(i * queries_per_event * 2 + j * 997) % len(pairs)]
                for j in range(queries_per_event)
            ]
            schedule.append((kind, channel, queries))
    return schedule


def _run_churn(net, schedule, incremental: bool, certificate_every: int = 0):
    """Replay *schedule* through one cache configuration.

    Returns the answers (for cross-checking), the cache counters, the
    total churn wall time, the average fault-to-first-answer latency,
    and any certificate violations found on the sampled answers.
    """
    injector = FaultInjector(net)
    cache = EpochRouterCache(injector.network_view, incremental=incremental)
    first = schedule[0][2][0]
    try:
        cache.route(*first)  # initial build is not churn; keep it untimed
    except NoPathError:
        pass
    answers = []
    errors: list[str] = []
    samples = []  # (step, s, t, path, view) checked after timing stops
    first_answer_seconds = 0.0
    start = time.perf_counter()
    for step, (kind, (tail, head, w), queries) in enumerate(schedule):
        fault_start = time.perf_counter()
        injector.apply(FaultEvent(0.5, kind, tail=tail, head=head, wavelength=w))
        if kind == "channel_fail":
            cache.mark_channel_degraded(tail, head, w)
        else:
            cache.mark_channel_recovered(tail, head, w)
        for j, (s, t) in enumerate(queries):
            try:
                path = cache.route(s, t)
            except NoPathError:
                path = None
            if j == 0:
                first_answer_seconds += time.perf_counter() - fault_start
            answers.append(path)
            if (
                certificate_every
                and path is not None
                and len(answers) % certificate_every == 0
            ):
                samples.append((step, s, t, path))
    total = time.perf_counter() - start
    # Eq.1 certificate checks run outside the timed loop so verification
    # cost never skews the serving comparison; each sampled answer is
    # checked against its own degraded view, reconstructed by replaying
    # the schedule prefix on a fresh injector.
    for step, s, t, path in samples:
        replay = FaultInjector(net)
        for kind, (tail, head, w), _ in schedule[: step + 1]:
            replay.apply(FaultEvent(0.5, kind, tail=tail, head=head, wavelength=w))
        cert = check_certificate(replay.network_view(), path, s, t)
        if not cert.ok:
            errors.append(
                f"churn certificate violation at step {step} "
                f"{s}->{t}: " + "; ".join(cert.violations)
            )
    return answers, cache.counters(), total, first_answer_seconds, len(samples), errors


def bench_fault_churn(
    net, name: str, events: int = 25, queries_per_event: int = 3
) -> tuple[dict, list[str]]:
    """Full-invalidation vs delta-patched serving on one churn stream."""
    schedule = _churn_schedule(net, events, queries_per_event)
    full_answers, full_counters, t_full, t_full_first, _, errs_full = _run_churn(
        net, schedule, incremental=False
    )
    (
        delta_answers,
        delta_counters,
        t_delta,
        t_delta_first,
        certs,
        errs_delta,
    ) = _run_churn(net, schedule, incremental=True, certificate_every=5)

    errors = errs_full + errs_delta
    for i, (full, delta) in enumerate(zip(full_answers, delta_answers)):
        if (full is None) != (delta is None):
            errors.append(f"{name}: churn reachability differs at answer {i}")
        elif full is not None and (
            full.hops != delta.hops or full.total_cost != delta.total_cost
        ):
            errors.append(f"{name}: churn answer {i} differs patched vs rebuilt")

    fault_count = len(schedule)
    return {
        "topology": name,
        "nodes": len(net.nodes()),
        "wavelengths": net.num_wavelengths,
        "cpu_count": os.cpu_count(),
        "fault_events": fault_count,
        "queries": len(full_answers),
        "full_invalidation_seconds": t_full,
        "delta_seconds": t_delta,
        "churn_speedup": t_full / t_delta if t_delta > 0 else float("inf"),
        "full_fault_to_answer_us": t_full_first / fault_count * 1e6,
        "delta_fault_to_answer_us": t_delta_first / fault_count * 1e6,
        "fault_to_answer_speedup": (
            t_full_first / t_delta_first if t_delta_first > 0 else float("inf")
        ),
        "full_rebuilds": full_counters["rebuilds"],
        "delta_rebuilds": delta_counters["rebuilds"],
        "delta_patches": delta_counters["patches"],
        "delta_tree_patches": delta_counters["tree_patches"],
        "certificates_checked": certs,
    }, errors


def _print_churn_row(row: dict) -> None:
    print(
        f"{row['topology']}: churn {row['fault_events']} faults / "
        f"{row['queries']} queries  "
        f"full {row['full_invalidation_seconds'] * 1e3:8.1f} ms  "
        f"delta {row['delta_seconds'] * 1e3:8.1f} ms  "
        f"({row['churn_speedup']:.1f}x; fault->answer "
        f"{row['fault_to_answer_speedup']:.1f}x; "
        f"{row['delta_patches']} patches vs {row['full_rebuilds']} rebuilds; "
        f"{row['certificates_checked']} certs ok)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small topologies only (CI smoke mode)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process count for the all-pairs comparison (default 4)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_routing.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--churn-smoke",
        action="store_true",
        help="CI mode: loop only the fault-churn scenario for "
        "--churn-seconds, failing on any patched-vs-rebuilt mismatch",
    )
    parser.add_argument(
        "--churn-seconds",
        type=float,
        default=30.0,
        help="time budget for --churn-smoke (default 30)",
    )
    parser.add_argument(
        "--server-smoke",
        action="store_true",
        help="CI mode: one chunked all-pairs sweep against a live UDS "
        "router server, failing on any serial mismatch or leaked segment",
    )
    parser.add_argument(
        "--serving-smoke",
        action="store_true",
        help="CI mode: identity probe of a 2x2 sharded tier against the "
        "in-process router, failing on any mismatch or leaked segment",
    )
    args = parser.parse_args(argv)

    if args.churn_smoke:
        return churn_smoke(args.churn_seconds)
    if args.server_smoke:
        return server_smoke()
    if args.serving_smoke:
        return serving_smoke()

    if args.quick:
        single_sizes = [24, 32]
        all_pairs_sizes = [32]
        churn_sizes = [32]
        crossover = (24, 16, (1, 2, 4))
    else:
        single_sizes = [32, 48, 64]
        all_pairs_sizes = [48, 64]
        churn_sizes = [48, 64]
        crossover = (32, 32, (1, 2, 3, 4, 6, 8))

    report = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "quick": args.quick,
        "single_pair": [],
        "all_pairs": [],
        "fault_churn": [],
    }
    errors: list[str] = []

    for n in single_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_single_pair(sparse_wan(n, seed=n), name)
        report["single_pair"].append(row)
        errors.extend(errs)
        kernels = row["kernels"]
        print(
            f"{name}: {row['queries']} warm queries  "
            f"seed {row['seed_us_per_query']:8.1f} us/q  "
            f"flat {kernels['overlay_flat']['us_per_query']:8.1f} us/q  "
            f"bucket {kernels['overlay_bucket']['us_per_query']:8.1f} us/q  "
            f"batched {kernels['forest_batched']['us_per_query']:8.1f} us/q  "
            f"(best {max(k['speedup_vs_seed'] for k in kernels.values() if 'speedup_vs_seed' in k):.1f}x)"
        )

    for n in all_pairs_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_all_pairs(sparse_wan(n, seed=n), name, args.workers)
        report["all_pairs"].append(row)
        errors.extend(errs)
        print(
            f"{name}: all-pairs serial {row['serial_seconds'] * 1e3:8.1f} ms  "
            f"workers={row['workers']} "
            f"shared {row['parallel_shared_seconds'] * 1e3:8.1f} ms  "
            f"pickled {row['parallel_pickled_seconds'] * 1e3:8.1f} ms  "
            f"({row['parallel_speedup']:.2f}x on {os.cpu_count()} CPU(s); "
            f"attach {row['attach_cost_seconds'] * 1e3:.2f} ms vs "
            f"pickle {row['pickle_cost_seconds'] * 1e3:.2f} ms per worker)"
        )

    for n in churn_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_fault_churn(sparse_wan(n, seed=n), name)
        report["fault_churn"].append(row)
        errors.extend(errs)
        _print_churn_row(row)

    cx_n, cx_k, cx_k0s = crossover
    section, errs = bench_restricted_crossover(cx_n, cx_k, cx_k0s)
    report["restricted_crossover"] = section
    errors.extend(errs)
    for row in section["rows"]:
        print(
            f"restricted n={cx_n} k={cx_k} k0={row['k0']}: "
            f"G' {row['restricted_us_per_tree']:8.1f} us/tree  "
            f"G_all {row['general_us_per_tree']:8.1f} us/tree  "
            f"({row['tree_speedup']:.2f}x; "
            f"{row['aux_nodes_restricted']} vs {row['aux_nodes_general']} aux nodes)"
        )

    report["verified"] = not errors
    report["errors"] = errors
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if errors:
        for line in errors:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    print(
        "result identity verified: seed == overlay+flat, "
        "serial == parallel, patched == rebuilt"
    )
    return 0


def server_smoke() -> int:
    """One wire-level all-pairs sweep against a live router server.

    Starts a UDS :class:`~repro.server.RouterServer`, drives a full
    ``route_all_pairs`` through ``ALL_PAIRS_CHUNK`` frames, and demands
    the result equal the serial run — paths, iteration order, and
    aggregated stats — then shuts down and audits ``/dev/shm``.
    """
    from repro.server import RouterClient, RouterServer
    from repro.shortestpath.shared import leaked_segments

    net = sparse_wan(32, seed=32)
    before = set(leaked_segments())
    serial = LiangShenRouter(net).route_all_pairs()
    with RouterServer(net, workers=2, uds="") as server:
        with RouterClient(server.address) as client:
            start = time.perf_counter()
            remote = client.route_all_pairs()
            elapsed = time.perf_counter() - start
    print(
        f"server smoke: {len(remote.paths)} paths over the wire in "
        f"{elapsed * 1e3:.1f} ms (chunked, 2 warm workers)"
    )
    failures = []
    if remote.paths != serial.paths:
        failures.append("wire all-pairs paths differ from serial")
    elif list(remote.paths) != list(serial.paths):
        failures.append("wire all-pairs iteration order differs from serial")
    if remote.stats != serial.stats:
        failures.append("wire all-pairs stats differ from serial")
    leaked = sorted(set(leaked_segments()) - before)
    if leaked:
        failures.append(f"leaked shared-memory segment(s): {', '.join(leaked)}")
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    print("server smoke: wire == serial, no leaked segments")
    return 0


def serving_smoke() -> int:
    """Identity probe against a live sharded tier.

    Boots a 2-shard × 2-replica :class:`~repro.cluster.ShardManager`,
    routes every ordered pair through the
    :class:`~repro.cluster.FrontendRouter` (consistent-hash placement +
    replica failover in the loop), and demands byte-identical answers to
    an in-process :class:`LiangShenRouter` — then audits ``/dev/shm``.
    Timings are printed but never gate the exit code.
    """
    from repro.cluster import ClosedLoopLoadGenerator, FrontendRouter
    from repro.cluster import ShardManager, all_pairs_workload
    from repro.shortestpath.shared import leaked_segments

    net = sparse_wan(24, seed=24)
    before = set(leaked_segments())
    router = LiangShenRouter(net)
    failures = []
    with ShardManager(net, shards=2, replicas=2, workers=1) as manager:
        frontend = FrontendRouter(manager)
        pairs = all_pairs_workload(net, seed=24)
        start = time.perf_counter()
        for source, target in pairs:
            try:
                remote = frontend.route(source, target)
            except NoPathError:
                remote = None
            local = _try(router, source, target)
            local_path = None if local is None else local.path
            if remote != local_path:
                failures.append(
                    f"tier answer differs for {source}->{target}"
                )
        t_probe = time.perf_counter() - start
        report = ClosedLoopLoadGenerator(
            frontend, pairs, concurrency=2, batch_size=32, total_queries=2000
        ).run()
        frontend.close()
    print(
        f"serving smoke: {len(pairs)} identity probes in "
        f"{t_probe * 1e3:.1f} ms; closed loop {report.queries} queries at "
        f"{report.throughput:.0f} q/s "
        f"(p50 {report.latency['p50']:.2f} ms, "
        f"p999 {report.latency['p999']:.2f} ms, "
        f"{os.cpu_count()} CPU(s))"
    )
    leaked = sorted(set(leaked_segments()) - before)
    if leaked:
        failures.append(f"leaked shared-memory segment(s): {', '.join(leaked)}")
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    print("serving smoke: tier == in-process router, no leaked segments")
    return 0


def churn_smoke(budget: float) -> int:
    """Time-budgeted churn loop: correctness gate only, no report file."""
    deadline = time.perf_counter() + budget
    rounds = 0
    while time.perf_counter() < deadline:
        n = (24, 32)[rounds % 2]
        net = sparse_wan(n, seed=n + rounds)
        row, errors = bench_fault_churn(net, f"sparse_wan_n{n}_r{rounds}")
        _print_churn_row(row)
        if errors:
            for line in errors:
                print(f"MISMATCH: {line}", file=sys.stderr)
            return 1
        rounds += 1
    print(f"churn smoke: {rounds} round(s), patched == rebuilt throughout")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
