"""Hot-path routing benchmark: overlay + flat kernel vs the seed path.

Standalone script (argparse, no pytest) so CI can run it as a smoke job::

    PYTHONPATH=src python benchmarks/bench_routing_hotpath.py --quick

It measures three things and writes ``BENCH_routing.json``:

* **Single-pair warm queries** — the seed configuration (per-query
  ``G_{s,t}`` rebuild over an addressable binary heap) against the
  overhauled default (shared ``G'`` overlay + flat-array kernel with
  reused scratch buffers) on the same query stream.
* **All-pairs fan-out** — serial ``route_all_pairs`` against the
  process-parallel path, with the measured worker count recorded next
  to the machine's CPU count (a 1-CPU container cannot show a parallel
  win; the numbers say so honestly).
* **Fault churn** — an alternating degrade/recover + query stream served
  by two epoch caches: full invalidation (every fault rebuilds
  ``G_all``) against incremental delta-epoch patching (CSR masking +
  warm-run repair).  Both sides answer the identical stream; answers
  are compared hop-for-hop and a sample is certificate-checked against
  the degraded network of the moment.
* **Result identity** — every timed query is cross-checked: exact cost
  equality and identical hop sequences between the seed and hot paths,
  and all-pairs parallel output equal to serial.

``--churn-smoke`` runs only the churn scenario in a time-budgeted loop
(``--churn-seconds``, default 30) and exits nonzero on any
patched-vs-rebuilt mismatch — the CI guardrail for the delta layer.

The exit code reflects **correctness only**: mismatching results exit
nonzero, slow results never do (CI boxes are noisy; timings are data,
not assertions).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import sparse_wan  # noqa: E402

from repro.core.parallel import route_all_pairs_parallel  # noqa: E402
from repro.core.routing import LiangShenRouter  # noqa: E402
from repro.exceptions import NoPathError  # noqa: E402
from repro.faults.injector import FaultInjector  # noqa: E402
from repro.faults.plan import FaultEvent  # noqa: E402
from repro.service.cache import EpochRouterCache  # noqa: E402
from repro.verify.certificate import check_certificate  # noqa: E402


def _try(router, s, t):
    try:
        return router.route(s, t)
    except NoPathError:
        return None


def bench_single_pair(net, name: str) -> tuple[dict, list[str]]:
    """Time the full query stream on the seed path and the hot path."""
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]

    seed_router = LiangShenRouter(net, heap="binary", overlay=False)
    hot_router = LiangShenRouter(net)  # overlay + flat
    hot_router.layered_graph()  # warm the shared G' before timing

    start = time.perf_counter()
    seed_results = [_try(seed_router, s, t) for s, t in pairs]
    t_seed = time.perf_counter() - start

    start = time.perf_counter()
    hot_results = [_try(hot_router, s, t) for s, t in pairs]
    t_hot = time.perf_counter() - start

    errors: list[str] = []
    for (s, t), seed, hot in zip(pairs, seed_results, hot_results):
        if (seed is None) != (hot is None):
            errors.append(f"{name}: reachability differs for {s}->{t}")
        elif seed is not None:
            if hot.cost != seed.cost:
                errors.append(
                    f"{name}: cost differs for {s}->{t}: "
                    f"{seed.cost!r} vs {hot.cost!r}"
                )
            elif hot.path.hops != seed.path.hops:
                errors.append(f"{name}: hop sequence differs for {s}->{t}")

    return {
        "topology": name,
        "nodes": len(nodes),
        "wavelengths": net.num_wavelengths,
        "queries": len(pairs),
        "seed_rebuild_binary_seconds": t_seed,
        "overlay_flat_seconds": t_hot,
        "speedup": t_seed / t_hot if t_hot > 0 else float("inf"),
        "seed_us_per_query": t_seed / len(pairs) * 1e6,
        "hot_us_per_query": t_hot / len(pairs) * 1e6,
    }, errors


def bench_all_pairs(net, name: str, workers: int) -> tuple[dict, list[str]]:
    router = LiangShenRouter(net)
    aux = router.all_pairs_graph()  # warm: both runs share the same G_all

    start = time.perf_counter()
    serial = router.route_all_pairs()
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    fanned = route_all_pairs_parallel(net, workers=workers, aux=aux)
    t_parallel = time.perf_counter() - start

    errors: list[str] = []
    serial_view = {p: (v.hops, v.total_cost) for p, v in serial.paths.items()}
    fanned_view = {p: (v.hops, v.total_cost) for p, v in fanned.paths.items()}
    if serial_view != fanned_view:
        errors.append(f"{name}: parallel all-pairs differs from serial")
    if serial.stats.settled != fanned.stats.settled:
        errors.append(f"{name}: parallel all-pairs settled-count differs")

    return {
        "topology": name,
        "nodes": len(net.nodes()),
        "pairs_routed": len(serial.paths),
        "workers": workers,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "parallel_speedup": t_serial / t_parallel if t_parallel > 0 else 0.0,
    }, errors


def _churn_schedule(net, events: int, queries_per_event: int):
    """Deterministic alternating degrade/recover stream with query pairs.

    Both cache configurations replay exactly this schedule, so their
    timings and answers are directly comparable.
    """
    channels = [
        (link.tail, link.head, w)
        for link in net.links()
        for w in sorted(link.costs)
    ]
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    schedule = []
    for i in range(events):
        channel = channels[(i * 7919) % len(channels)]
        for kind in ("channel_fail", "channel_recover"):
            queries = [
                pairs[(i * queries_per_event * 2 + j * 997) % len(pairs)]
                for j in range(queries_per_event)
            ]
            schedule.append((kind, channel, queries))
    return schedule


def _run_churn(net, schedule, incremental: bool, certificate_every: int = 0):
    """Replay *schedule* through one cache configuration.

    Returns the answers (for cross-checking), the cache counters, the
    total churn wall time, the average fault-to-first-answer latency,
    and any certificate violations found on the sampled answers.
    """
    injector = FaultInjector(net)
    cache = EpochRouterCache(injector.network_view, incremental=incremental)
    first = schedule[0][2][0]
    try:
        cache.route(*first)  # initial build is not churn; keep it untimed
    except NoPathError:
        pass
    answers = []
    errors: list[str] = []
    samples = []  # (step, s, t, path, view) checked after timing stops
    first_answer_seconds = 0.0
    start = time.perf_counter()
    for step, (kind, (tail, head, w), queries) in enumerate(schedule):
        fault_start = time.perf_counter()
        injector.apply(FaultEvent(0.5, kind, tail=tail, head=head, wavelength=w))
        if kind == "channel_fail":
            cache.mark_channel_degraded(tail, head, w)
        else:
            cache.mark_channel_recovered(tail, head, w)
        for j, (s, t) in enumerate(queries):
            try:
                path = cache.route(s, t)
            except NoPathError:
                path = None
            if j == 0:
                first_answer_seconds += time.perf_counter() - fault_start
            answers.append(path)
            if (
                certificate_every
                and path is not None
                and len(answers) % certificate_every == 0
            ):
                samples.append((step, s, t, path))
    total = time.perf_counter() - start
    # Eq.1 certificate checks run outside the timed loop so verification
    # cost never skews the serving comparison; each sampled answer is
    # checked against its own degraded view, reconstructed by replaying
    # the schedule prefix on a fresh injector.
    for step, s, t, path in samples:
        replay = FaultInjector(net)
        for kind, (tail, head, w), _ in schedule[: step + 1]:
            replay.apply(FaultEvent(0.5, kind, tail=tail, head=head, wavelength=w))
        cert = check_certificate(replay.network_view(), path, s, t)
        if not cert.ok:
            errors.append(
                f"churn certificate violation at step {step} "
                f"{s}->{t}: " + "; ".join(cert.violations)
            )
    return answers, cache.counters(), total, first_answer_seconds, len(samples), errors


def bench_fault_churn(
    net, name: str, events: int = 25, queries_per_event: int = 3
) -> tuple[dict, list[str]]:
    """Full-invalidation vs delta-patched serving on one churn stream."""
    schedule = _churn_schedule(net, events, queries_per_event)
    full_answers, full_counters, t_full, t_full_first, _, errs_full = _run_churn(
        net, schedule, incremental=False
    )
    (
        delta_answers,
        delta_counters,
        t_delta,
        t_delta_first,
        certs,
        errs_delta,
    ) = _run_churn(net, schedule, incremental=True, certificate_every=5)

    errors = errs_full + errs_delta
    for i, (full, delta) in enumerate(zip(full_answers, delta_answers)):
        if (full is None) != (delta is None):
            errors.append(f"{name}: churn reachability differs at answer {i}")
        elif full is not None and (
            full.hops != delta.hops or full.total_cost != delta.total_cost
        ):
            errors.append(f"{name}: churn answer {i} differs patched vs rebuilt")

    fault_count = len(schedule)
    return {
        "topology": name,
        "nodes": len(net.nodes()),
        "wavelengths": net.num_wavelengths,
        "fault_events": fault_count,
        "queries": len(full_answers),
        "full_invalidation_seconds": t_full,
        "delta_seconds": t_delta,
        "churn_speedup": t_full / t_delta if t_delta > 0 else float("inf"),
        "full_fault_to_answer_us": t_full_first / fault_count * 1e6,
        "delta_fault_to_answer_us": t_delta_first / fault_count * 1e6,
        "fault_to_answer_speedup": (
            t_full_first / t_delta_first if t_delta_first > 0 else float("inf")
        ),
        "full_rebuilds": full_counters["rebuilds"],
        "delta_rebuilds": delta_counters["rebuilds"],
        "delta_patches": delta_counters["patches"],
        "delta_tree_patches": delta_counters["tree_patches"],
        "certificates_checked": certs,
    }, errors


def _print_churn_row(row: dict) -> None:
    print(
        f"{row['topology']}: churn {row['fault_events']} faults / "
        f"{row['queries']} queries  "
        f"full {row['full_invalidation_seconds'] * 1e3:8.1f} ms  "
        f"delta {row['delta_seconds'] * 1e3:8.1f} ms  "
        f"({row['churn_speedup']:.1f}x; fault->answer "
        f"{row['fault_to_answer_speedup']:.1f}x; "
        f"{row['delta_patches']} patches vs {row['full_rebuilds']} rebuilds; "
        f"{row['certificates_checked']} certs ok)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small topologies only (CI smoke mode)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process count for the all-pairs comparison (default 4)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_routing.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--churn-smoke",
        action="store_true",
        help="CI mode: loop only the fault-churn scenario for "
        "--churn-seconds, failing on any patched-vs-rebuilt mismatch",
    )
    parser.add_argument(
        "--churn-seconds",
        type=float,
        default=30.0,
        help="time budget for --churn-smoke (default 30)",
    )
    args = parser.parse_args(argv)

    if args.churn_smoke:
        return churn_smoke(args.churn_seconds)

    if args.quick:
        single_sizes = [24, 32]
        all_pairs_sizes = [32]
        churn_sizes = [32]
    else:
        single_sizes = [32, 48, 64]
        all_pairs_sizes = [48, 64]
        churn_sizes = [48, 64]

    report = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "quick": args.quick,
        "single_pair": [],
        "all_pairs": [],
        "fault_churn": [],
    }
    errors: list[str] = []

    for n in single_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_single_pair(sparse_wan(n, seed=n), name)
        report["single_pair"].append(row)
        errors.extend(errs)
        print(
            f"{name}: {row['queries']} warm queries  "
            f"seed {row['seed_us_per_query']:8.1f} us/q  "
            f"hot {row['hot_us_per_query']:8.1f} us/q  "
            f"speedup {row['speedup']:.1f}x"
        )

    for n in all_pairs_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_all_pairs(sparse_wan(n, seed=n), name, args.workers)
        report["all_pairs"].append(row)
        errors.extend(errs)
        print(
            f"{name}: all-pairs serial {row['serial_seconds'] * 1e3:8.1f} ms  "
            f"workers={row['workers']} {row['parallel_seconds'] * 1e3:8.1f} ms  "
            f"({row['parallel_speedup']:.2f}x on {os.cpu_count()} CPU(s))"
        )

    for n in churn_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_fault_churn(sparse_wan(n, seed=n), name)
        report["fault_churn"].append(row)
        errors.extend(errs)
        _print_churn_row(row)

    report["verified"] = not errors
    report["errors"] = errors
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if errors:
        for line in errors:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    print(
        "result identity verified: seed == overlay+flat, "
        "serial == parallel, patched == rebuilt"
    )
    return 0


def churn_smoke(budget: float) -> int:
    """Time-budgeted churn loop: correctness gate only, no report file."""
    deadline = time.perf_counter() + budget
    rounds = 0
    while time.perf_counter() < deadline:
        n = (24, 32)[rounds % 2]
        net = sparse_wan(n, seed=n + rounds)
        row, errors = bench_fault_churn(net, f"sparse_wan_n{n}_r{rounds}")
        _print_churn_row(row)
        if errors:
            for line in errors:
                print(f"MISMATCH: {line}", file=sys.stderr)
            return 1
        rounds += 1
    print(f"churn smoke: {rounds} round(s), patched == rebuilt throughout")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
