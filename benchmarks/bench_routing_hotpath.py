"""Hot-path routing benchmark: overlay + flat kernel vs the seed path.

Standalone script (argparse, no pytest) so CI can run it as a smoke job::

    PYTHONPATH=src python benchmarks/bench_routing_hotpath.py --quick

It measures three things and writes ``BENCH_routing.json``:

* **Single-pair warm queries** — the seed configuration (per-query
  ``G_{s,t}`` rebuild over an addressable binary heap) against the
  overhauled default (shared ``G'`` overlay + flat-array kernel with
  reused scratch buffers) on the same query stream.
* **All-pairs fan-out** — serial ``route_all_pairs`` against the
  process-parallel path, with the measured worker count recorded next
  to the machine's CPU count (a 1-CPU container cannot show a parallel
  win; the numbers say so honestly).
* **Result identity** — every timed query is cross-checked: exact cost
  equality and identical hop sequences between the seed and hot paths,
  and all-pairs parallel output equal to serial.

The exit code reflects **correctness only**: mismatching results exit
nonzero, slow results never do (CI boxes are noisy; timings are data,
not assertions).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import sparse_wan  # noqa: E402

from repro.core.parallel import route_all_pairs_parallel  # noqa: E402
from repro.core.routing import LiangShenRouter  # noqa: E402
from repro.exceptions import NoPathError  # noqa: E402


def _try(router, s, t):
    try:
        return router.route(s, t)
    except NoPathError:
        return None


def bench_single_pair(net, name: str) -> tuple[dict, list[str]]:
    """Time the full query stream on the seed path and the hot path."""
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]

    seed_router = LiangShenRouter(net, heap="binary", overlay=False)
    hot_router = LiangShenRouter(net)  # overlay + flat
    hot_router.layered_graph()  # warm the shared G' before timing

    start = time.perf_counter()
    seed_results = [_try(seed_router, s, t) for s, t in pairs]
    t_seed = time.perf_counter() - start

    start = time.perf_counter()
    hot_results = [_try(hot_router, s, t) for s, t in pairs]
    t_hot = time.perf_counter() - start

    errors: list[str] = []
    for (s, t), seed, hot in zip(pairs, seed_results, hot_results):
        if (seed is None) != (hot is None):
            errors.append(f"{name}: reachability differs for {s}->{t}")
        elif seed is not None:
            if hot.cost != seed.cost:
                errors.append(
                    f"{name}: cost differs for {s}->{t}: "
                    f"{seed.cost!r} vs {hot.cost!r}"
                )
            elif hot.path.hops != seed.path.hops:
                errors.append(f"{name}: hop sequence differs for {s}->{t}")

    return {
        "topology": name,
        "nodes": len(nodes),
        "wavelengths": net.num_wavelengths,
        "queries": len(pairs),
        "seed_rebuild_binary_seconds": t_seed,
        "overlay_flat_seconds": t_hot,
        "speedup": t_seed / t_hot if t_hot > 0 else float("inf"),
        "seed_us_per_query": t_seed / len(pairs) * 1e6,
        "hot_us_per_query": t_hot / len(pairs) * 1e6,
    }, errors


def bench_all_pairs(net, name: str, workers: int) -> tuple[dict, list[str]]:
    router = LiangShenRouter(net)
    aux = router.all_pairs_graph()  # warm: both runs share the same G_all

    start = time.perf_counter()
    serial = router.route_all_pairs()
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    fanned = route_all_pairs_parallel(net, workers=workers, aux=aux)
    t_parallel = time.perf_counter() - start

    errors: list[str] = []
    serial_view = {p: (v.hops, v.total_cost) for p, v in serial.paths.items()}
    fanned_view = {p: (v.hops, v.total_cost) for p, v in fanned.paths.items()}
    if serial_view != fanned_view:
        errors.append(f"{name}: parallel all-pairs differs from serial")
    if serial.stats.settled != fanned.stats.settled:
        errors.append(f"{name}: parallel all-pairs settled-count differs")

    return {
        "topology": name,
        "nodes": len(net.nodes()),
        "pairs_routed": len(serial.paths),
        "workers": workers,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "parallel_speedup": t_serial / t_parallel if t_parallel > 0 else 0.0,
    }, errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small topologies only (CI smoke mode)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process count for the all-pairs comparison (default 4)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_routing.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.quick:
        single_sizes = [24, 32]
        all_pairs_sizes = [32]
    else:
        single_sizes = [32, 48, 64]
        all_pairs_sizes = [48, 64]

    report = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "quick": args.quick,
        "single_pair": [],
        "all_pairs": [],
    }
    errors: list[str] = []

    for n in single_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_single_pair(sparse_wan(n, seed=n), name)
        report["single_pair"].append(row)
        errors.extend(errs)
        print(
            f"{name}: {row['queries']} warm queries  "
            f"seed {row['seed_us_per_query']:8.1f} us/q  "
            f"hot {row['hot_us_per_query']:8.1f} us/q  "
            f"speedup {row['speedup']:.1f}x"
        )

    for n in all_pairs_sizes:
        name = f"sparse_wan_n{n}"
        row, errs = bench_all_pairs(sparse_wan(n, seed=n), name, args.workers)
        report["all_pairs"].append(row)
        errors.extend(errs)
        print(
            f"{name}: all-pairs serial {row['serial_seconds'] * 1e3:8.1f} ms  "
            f"workers={row['workers']} {row['parallel_seconds'] * 1e3:8.1f} ms  "
            f"({row['parallel_speedup']:.2f}x on {os.cpu_count()} CPU(s))"
        )

    report["verified"] = not errors
    report["errors"] = errors
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if errors:
        for line in errors:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    print("result identity verified: seed == overlay+flat, serial == parallel")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
