"""LP — ablation: the lightpath fast path vs the general reduction.

On conversion-free networks the problem decomposes into ``k`` independent
per-wavelength shortest paths (no ``k²n`` conversion-edge term).  Measure
the fast path's advantage over running the full layered reduction on the
same inputs, and confirm identical optima.
"""

from __future__ import annotations

import time

from repro.core.conversion import NoConversion
from repro.core.lightpath import LightpathRouter
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from repro.topology.generators import degree_bounded_network
from repro.topology.wavelength_assign import random_wavelengths


def _no_conversion_wan(n: int, k: int, seed: int):
    return degree_bounded_network(
        n,
        k,
        max_degree=4,
        seed=seed,
        wavelength_policy=random_wavelengths(k, availability=0.8),
        conversion=NoConversion(),
    )


def test_fast_path_agrees_and_wins(benchmark, report):
    net = _no_conversion_wan(192, 6, seed=90)
    nodes = net.nodes()
    pairs = [(nodes[i], nodes[-(i + 1)]) for i in range(4)]
    fast = LightpathRouter(net)
    general = LiangShenRouter(net)

    def run(router):
        start = time.perf_counter()
        total = 0.0
        for s, t in pairs:
            try:
                total += router.route(s, t).cost
            except NoPathError:
                pass
        return time.perf_counter() - start, total

    t_fast, cost_fast = run(fast)
    t_general, cost_general = run(general)
    report(
        "LP: lightpath fast path vs general reduction (n=192, k=6, no conversion)",
        f"fast path : {t_fast * 1e3:7.2f} ms  (per-λ subgraphs prebuilt)\n"
        f"general   : {t_general * 1e3:7.2f} ms  "
        f"(rebuilds G_(s,t) per query)\n"
        f"ratio     : {t_general / t_fast:4.1f}x",
    )
    assert cost_fast == cost_general
    # With the subgraphs amortized in the constructor, the fast path must
    # beat the per-query layered rebuild.
    assert t_fast < t_general

    result = benchmark(lambda: fast.route(*pairs[0]))
    benchmark.extra_info["speed_ratio"] = t_general / t_fast
    assert result.path.is_lightpath


def test_per_wavelength_landscape_cost(benchmark):
    """route_per_wavelength does k full Dijkstras — the primitive behind
    wavelength-assignment policies."""
    net = _no_conversion_wan(128, 8, seed=91)
    nodes = net.nodes()
    router = LightpathRouter(net)
    landscape = benchmark(lambda: router.route_per_wavelength(nodes[0], nodes[-1]))
    assert len(landscape) == 8
