"""SEC3C — the paper's comparison against Chlamtac–Faragó–Zhang.

Claims (Section III-C):

* both algorithms find the same optimum (they solve the same problem),
* in the sparse regime (``m = O(n)``, ``k = O(log n)``) ours beats CFZ by
  a factor growing like ``Ω(n / max{k, d, log n})`` — i.e. the speedup
  *increases with n* and the CFZ time fits ~quadratic in ``n`` while ours
  fits near-linear,
* with ``k = Ω(n)`` on dense networks the two have the same worst-case
  complexity (no asymptotic win — the honest flip side).
"""

from __future__ import annotations

from repro.analysis.comparison import run_comparison
from repro.analysis.complexity import fit_power_law, growth_table
from repro.baseline.cfz import CFZRouter
from repro.core.routing import LiangShenRouter
from benchmarks.conftest import sparse_wan


def test_sparse_regime_speedup_grows(benchmark, report):
    ns = [64, 128, 256, 512]
    rows = run_comparison(ns, queries_per_n=2, repeats=2, seed=7)
    ls_times = [r.liang_shen_seconds for r in rows]
    cfz_times = [r.cfz_seconds for r in rows]
    speedups = [r.speedup for r in rows]
    table = growth_table(
        ns,
        {"liang_shen_s": ls_times, "cfz_dense_s": cfz_times, "speedup": speedups},
    )
    report("SEC3C: ours vs CFZ (dense scan), k = log2 n, m = O(n)", table)

    assert all(r.costs_agree for r in rows), "the two algorithms disagree on optima"
    # The headline: speedup grows with n and CFZ is the asymptotic loser.
    assert speedups[-1] > speedups[0], "speedup did not grow with n"
    assert speedups[-1] > 1.0, "no win even at the largest n"
    ls_fit = fit_power_law(ns, ls_times)
    cfz_fit = fit_power_law(ns, cfz_times)
    assert cfz_fit.exponent > ls_fit.exponent + 0.4, (
        f"CFZ exponent {cfz_fit.exponent:.2f} not clearly above "
        f"ours {ls_fit.exponent:.2f}"
    )

    net = sparse_wan(256, seed=7)
    nodes = net.nodes()
    result = benchmark(lambda: LiangShenRouter(net).route(nodes[0], nodes[-1]))
    benchmark.extra_info["speedups"] = dict(zip(map(str, ns), speedups))
    benchmark.extra_info["ls_exponent"] = ls_fit.exponent
    benchmark.extra_info["cfz_exponent"] = cfz_fit.exponent
    assert result.cost > 0


def test_heap_engine_comparison(benchmark, report):
    """A stronger baseline: CFZ on the same WG but with a heap.  Isolates
    the contribution of the smaller auxiliary graph from the queue."""
    rows = run_comparison([128, 256], queries_per_n=2, repeats=2, seed=8, cfz_engine="heap")
    table = "\n".join(
        f"n={r.n:5d}  ls={r.liang_shen_seconds * 1e3:8.2f}ms  "
        f"cfz_heap={r.cfz_seconds * 1e3:8.2f}ms  ratio={r.speedup:5.2f}"
        for r in rows
    )
    report("SEC3C (ablation): CFZ with a heap instead of the dense scan", table)
    assert all(r.costs_agree for r in rows)

    net = sparse_wan(256, seed=8)
    nodes = net.nodes()
    cfz = CFZRouter(net, engine="heap")
    result = benchmark(lambda: cfz.route(nodes[0], nodes[-1]))
    assert result.cost > 0


def test_cfz_single_query_baseline(benchmark):
    """Plain pytest-benchmark datapoint for the CFZ dense engine (the
    number the speedup table divides by)."""
    net = sparse_wan(256, seed=7)
    nodes = net.nodes()
    cfz = CFZRouter(net, engine="dense")
    result = benchmark(lambda: cfz.route(nodes[0], nodes[-1]))
    assert result.cost > 0
