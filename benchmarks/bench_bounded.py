"""ABL-Q — ablation: the conversion-budget knob.

Extension experiment (not a paper table): sweep the per-path conversion
budget ``q`` from 0 (pure lightpath) upward and measure (a) the optimal
cost profile, (b) feasibility, and (c) the product-graph overhead of the
bounded router vs the unconstrained one.  The paper's Section IV argues
converters are the scarce resource; this quantifies what each additional
converter buys on a k₀-bounded WAN, where conversion is frequently
mandatory.
"""

from __future__ import annotations

from repro.core.bounded import BoundedConversionRouter, conversion_cost_profile
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from benchmarks.conftest import restricted_wan


def _routable_pair(net):
    nodes = net.nodes()
    router = LiangShenRouter(net)
    for t in reversed(nodes):
        if t == nodes[0]:
            continue
        try:
            router.route(nodes[0], t)
            return nodes[0], t
        except NoPathError:
            continue
    raise AssertionError("generator produced an unroutable network")


def test_cost_vs_budget_profile(benchmark, report):
    net = restricted_wan(64, k=16, k0=2, seed=24)
    s, t = _routable_pair(net)
    profile = conversion_cost_profile(net, s, t)
    unconstrained = LiangShenRouter(net).route(s, t).cost
    lines = [f"q={q}: cost={cost:g}" for q, cost in profile]
    lines.append(f"unconstrained optimum: {unconstrained:g}")
    report("ABL-Q: optimal cost vs conversion budget (n=64, k=16, k0=2)", "\n".join(lines))
    # The profile is non-increasing and ends at the unconstrained optimum.
    costs = [c for _q, c in profile]
    assert all(a >= b - 1e-12 for a, b in zip(costs, costs[1:]))
    assert costs[-1] == unconstrained

    router = BoundedConversionRouter(net)
    budget = profile[-1][0]
    result = benchmark(lambda: router.route(s, t, max_conversions=budget))
    benchmark.extra_info["profile"] = [[q, c] for q, c in profile]
    assert result.path.num_conversions <= budget


def test_bounded_router_overhead(benchmark, report):
    """The product construction costs ~(q+1)x the base query."""
    import time

    net = restricted_wan(96, k=8, k0=3, seed=25)
    s, t = _routable_pair(net)
    unconstrained = LiangShenRouter(net)
    bounded = BoundedConversionRouter(net)

    start = time.perf_counter()
    for _ in range(3):
        unconstrained.route(s, t)
    base = (time.perf_counter() - start) / 3

    rows = []
    for q in (0, 2, 4, 8):
        start = time.perf_counter()
        try:
            bounded.route(s, t, max_conversions=q)
        except NoPathError:
            continue
        rows.append((q, time.perf_counter() - start))
    table = "\n".join(
        f"q={q}: {t_q * 1e3:7.2f} ms ({t_q / base:4.1f}x unconstrained)"
        for q, t_q in rows
    )
    report(f"ABL-Q: bounded-router overhead (unconstrained {base * 1e3:.2f} ms)", table)
    # Overhead grows with q but stays within a generous linear envelope.
    assert rows[-1][1] <= 30 * base * (rows[-1][0] + 1)

    benchmark(lambda: bounded.route(s, t, max_conversions=4))
