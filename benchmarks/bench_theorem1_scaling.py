"""THM1 — Theorem 1's single-pair complexity, measured.

Claim: ``O(k²n + km + kn·log(kn))`` per query.  In the sparse regime
(``m = O(n)``, ``k = O(log n)``) that is near-linear in ``n`` (up to log²
factors) and near-quadratic in ``k`` for fixed ``n``.  We sweep each
parameter, time full queries (construction + Dijkstra, exactly the
theorem's accounting), and fit power-law exponents.
"""

from __future__ import annotations

import time

from repro.analysis.complexity import fit_power_law, growth_table
from repro.core.routing import LiangShenRouter
from benchmarks.conftest import sparse_wan


def _time_queries(network, pairs, repeats: int = 3) -> float:
    router = LiangShenRouter(network)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for s, t in pairs:
            router.route(s, t)
        best = min(best, time.perf_counter() - start)
    return best


def test_scaling_in_n(benchmark, report):
    """Time vs n with k = ceil(log2 n): fitted exponent must stay well
    below quadratic (the CFZ regime) — near-linear modulo log factors."""
    ns = [64, 128, 256, 512]
    times = []
    for n in ns:
        net = sparse_wan(n, seed=1)
        nodes = net.nodes()
        pairs = [(nodes[0], nodes[n // 2]), (nodes[1], nodes[-1])]
        times.append(_time_queries(net, pairs))
    fit = fit_power_law(ns, times)
    table = growth_table(ns, {"seconds": times})
    report("THM1: single-pair time vs n (k = log2 n, m = O(n))", table)
    assert fit.exponent < 1.8, f"scaling in n looks superquadratic: {fit.exponent:.2f}"

    net = sparse_wan(256, seed=1)
    nodes = net.nodes()
    result = benchmark(lambda: LiangShenRouter(net).route(nodes[0], nodes[-1]))
    benchmark.extra_info["fit_exponent_n"] = fit.exponent
    benchmark.extra_info["times_vs_n"] = dict(zip(map(str, ns), times))
    assert result.cost > 0


def test_scaling_in_k(benchmark, report):
    """Time vs k at fixed n: the k²n term dominates for large k, so the
    fitted exponent should land near (or below) 2 and far from cubic."""
    n = 96
    ks = [2, 4, 8, 16]
    times = []
    for k in ks:
        net = sparse_wan(n, k=k, seed=2, availability=1.0)
        nodes = net.nodes()
        pairs = [(nodes[0], nodes[-1])]
        times.append(_time_queries(net, pairs))
    fit = fit_power_law(ks, times)
    table = growth_table(ks, {"seconds": times}, x_name="k")
    report(f"THM1: single-pair time vs k (n = {n})", table)
    assert fit.exponent < 2.6, f"scaling in k looks worse than k^2: {fit.exponent:.2f}"

    net = sparse_wan(n, k=8, seed=2, availability=1.0)
    nodes = net.nodes()
    result = benchmark(lambda: LiangShenRouter(net).route(nodes[0], nodes[-1]))
    benchmark.extra_info["fit_exponent_k"] = fit.exponent
    assert result.cost > 0


def test_work_counters_track_graph_size(benchmark):
    """Heap operations are bounded by auxiliary-graph size: pops <= |V'|+2,
    relaxations <= |E'| + terminal edges — the constants behind Theorem 1."""
    net = sparse_wan(128, seed=3)
    nodes = net.nodes()
    router = LiangShenRouter(net)
    result = benchmark(lambda: router.route(nodes[0], nodes[-1]))
    sizes = result.stats.sizes
    assert result.stats.heap["pops"] <= sizes.num_layer_nodes + 2
    assert result.stats.relaxations <= sizes.num_layer_edges + 2 * sizes.k + 2
