"""PROT — protection routing: APF heuristic vs optimal min-cost-flow pairs.

Extension experiment: on randomized sparse WANs, measure (a) how often
active-path-first fails to find a channel-disjoint pair that the
jointly-optimal flow formulation finds (trap rate), (b) the cost penalty
of APF when both succeed, and (c) the runtime ratio.
"""

from __future__ import annotations

import time

from repro.exceptions import NoPathError
from repro.wdm.optimal_protection import route_optimal_channel_disjoint_pair
from repro.wdm.protection import route_disjoint_pair
from benchmarks.conftest import sparse_wan


def test_trap_rate_and_cost_gap(benchmark, report):
    trials = 40
    apf_fail_opt_ok = 0
    both_ok = 0
    cost_gap_total = 0.0
    neither = 0
    for seed in range(trials):
        net = sparse_wan(24, seed=100 + seed, availability=0.45)
        nodes = net.nodes()
        s, t = nodes[0], nodes[-1]
        try:
            apf = route_disjoint_pair(net, s, t, disjointness="channel")
        except NoPathError:
            apf = None
        try:
            opt = route_optimal_channel_disjoint_pair(net, s, t)
        except NoPathError:
            opt = None
        if opt is None:
            assert apf is None, "APF found a pair the optimal solver missed"
            neither += 1
            continue
        if apf is None:
            apf_fail_opt_ok += 1
            continue
        both_ok += 1
        assert opt.total_cost <= apf.total_cost + 1e-9
        cost_gap_total += apf.total_cost / opt.total_cost - 1.0
    mean_gap = (cost_gap_total / both_ok) if both_ok else 0.0
    report(
        "PROT: APF vs optimal channel-disjoint pairs (40 random WANs)",
        f"both found a pair : {both_ok}\n"
        f"APF trapped       : {apf_fail_opt_ok}  (optimal succeeded)\n"
        f"no pair exists    : {neither}\n"
        f"mean APF cost gap : {mean_gap * 100:.1f}% when both succeed",
    )
    benchmark.extra_info["trap_rate"] = apf_fail_opt_ok / trials
    benchmark.extra_info["mean_cost_gap"] = mean_gap

    net = sparse_wan(24, seed=100, availability=0.45)
    nodes = net.nodes()
    benchmark(lambda: route_optimal_channel_disjoint_pair(net, nodes[0], nodes[-1]))


def test_runtime_ratio(benchmark, report):
    net = sparse_wan(64, seed=150)
    nodes = net.nodes()
    s, t = nodes[0], nodes[-1]

    start = time.perf_counter()
    for _ in range(3):
        route_disjoint_pair(net, s, t, disjointness="channel")
    apf_time = (time.perf_counter() - start) / 3

    start = time.perf_counter()
    for _ in range(3):
        route_optimal_channel_disjoint_pair(net, s, t)
    opt_time = (time.perf_counter() - start) / 3

    report(
        "PROT: runtime (n=64)",
        f"APF heuristic : {apf_time * 1e3:7.2f} ms\n"
        f"optimal (MCF) : {opt_time * 1e3:7.2f} ms "
        f"({opt_time / apf_time:.1f}x)",
    )
    # The optimal solver runs two Dijkstra-like augmentations plus graph
    # build; it must stay within a small factor of two APF routes.
    assert opt_time < 20 * apf_time

    benchmark(lambda: route_disjoint_pair(net, s, t, disjointness="channel"))
