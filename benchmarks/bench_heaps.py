"""HEAP — ablation of the priority queue inside the router.

Theorem 1 cites Fibonacci heaps for the ``O(m' + n' log n')`` bound.  In
CPython the constant factors invert the theory: the binary heap usually
wins, the Fibonacci heap pays for its pointer structure.  This benchmark
records all three on identical workloads — the honest engineering note
that accompanies the asymptotic claim.
"""

from __future__ import annotations

import time

import pytest

from repro.core.routing import LiangShenRouter
from repro.shortestpath.dijkstra import dijkstra
from benchmarks.conftest import sparse_wan

HEAPS = ["binary", "pairing", "fibonacci"]


@pytest.mark.parametrize("heap", HEAPS)
def test_router_heap_ablation(benchmark, heap):
    net = sparse_wan(256, seed=18)
    nodes = net.nodes()
    router = LiangShenRouter(net, heap=heap)
    result = benchmark(lambda: router.route(nodes[0], nodes[-1]))
    benchmark.extra_info["heap"] = heap
    benchmark.extra_info["decrease_keys"] = result.stats.heap.get("decreases", 0)
    assert result.cost > 0


def test_heaps_agree_and_report(benchmark, report):
    """One table: time per heap on the same batch of queries."""
    net = sparse_wan(384, seed=19)
    nodes = net.nodes()
    pairs = [(nodes[i], nodes[-(i + 1)]) for i in range(4)]
    lines = []
    costs = set()
    for heap in HEAPS:
        router = LiangShenRouter(net, heap=heap)
        start = time.perf_counter()
        total = sum(router.route(s, t).cost for s, t in pairs)
        elapsed = time.perf_counter() - start
        costs.add(round(total, 9))
        lines.append(f"{heap:10s} {elapsed * 1e3:9.2f} ms")
    report("HEAP: router time by priority queue (n=384, 4 queries)", "\n".join(lines))
    assert len(costs) == 1, "heaps disagreed on optima"
    router = LiangShenRouter(net, heap="binary")
    benchmark(lambda: router.route(*pairs[0]))


@pytest.mark.parametrize("heap", HEAPS)
def test_raw_dijkstra_heap_ablation(benchmark, heap):
    """The same ablation on a raw auxiliary graph, without decode overhead."""
    from repro.core.auxiliary import build_routing_graph

    net = sparse_wan(384, seed=20)
    nodes = net.nodes()
    aux = build_routing_graph(net, nodes[0], nodes[-1])
    run = benchmark(lambda: dijkstra(aux.graph, aux.source_id, heap=heap))
    assert run.settled > 0
