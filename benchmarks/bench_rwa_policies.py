"""ABL-PACK — ablation: wavelength-packing tie-break policies.

Extension experiment: under identical traffic, compare blocking for the
semilightpath provisioner with ``none`` / ``most-used`` / ``least-used``
tie-breaking, plus the first-fit baseline.  Expected shape (classic RWA
folklore): packing ("most-used") consolidates spectrum and blocks no more
than spreading ("least-used"); all three semilightpath variants dominate
first-fit.
"""

from __future__ import annotations

import pytest

from repro.topology.reference import nsfnet_network
from repro.wdm.first_fit import FirstFitProvisioner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator

POLICIES = ["none", "most-used", "least-used"]


def _run(net, trace, policy):
    if policy == "first-fit":
        provisioner = FirstFitProvisioner(net)
    else:
        provisioner = SemilightpathProvisioner(net, packing=policy)
    return DynamicSimulation(provisioner).run(trace)


def test_policy_comparison(benchmark, report):
    net = nsfnet_network(num_wavelengths=3)
    trace = TrafficGenerator(net.nodes(), 35.0, 1.0, seed=41).generate(600)
    rows = {
        policy: _run(net, trace, policy) for policy in POLICIES + ["first-fit"]
    }
    table = "\n".join(
        f"{policy:>11s}: blocked={stats.blocked:4d}  "
        f"P_block={stats.blocking_probability:6.3f}  "
        f"conv/conn={stats.mean_conversions:5.2f}"
        for policy, stats in rows.items()
    )
    report("ABL-PACK: blocking by wavelength policy (NSFNET, k=3, 35E)", table)

    # Semilightpath routing (any tie-break) dominates first-fit.
    for policy in POLICIES:
        assert rows[policy].blocked <= rows["first-fit"].blocked
    # Packing should not lose to spreading beyond noise.
    assert rows["most-used"].blocked <= rows["least-used"].blocked + 12

    benchmark.extra_info["blocking"] = {
        policy: stats.blocking_probability for policy, stats in rows.items()
    }
    short = trace[:120]
    benchmark(lambda: _run(net, short, "most-used"))


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_throughput(benchmark, policy):
    """Per-policy datapoint: admission throughput under the same trace."""
    net = nsfnet_network(num_wavelengths=3)
    trace = TrafficGenerator(net.nodes(), 20.0, 1.0, seed=43).generate(150)
    stats = benchmark(lambda: _run(net, trace, policy))
    assert stats.offered == 150
