"""KSP — K-shortest semilightpath enumeration cost.

Extension experiment: Yen's algorithm on ``G_{s,t}`` runs one
shortest-path query per spur node per accepted path — time should grow
roughly linearly in K for fixed topology.  Measured here with the decode
and dedup overhead included.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.complexity import fit_power_law, growth_table
from repro.core.ksp import k_shortest_semilightpaths
from benchmarks.conftest import sparse_wan


def test_time_vs_k(benchmark, report):
    net = sparse_wan(48, seed=160)
    nodes = net.nodes()
    s, t = nodes[0], nodes[-1]
    ks = [1, 2, 4, 8]
    times = []
    for k in ks:
        start = time.perf_counter()
        paths = k_shortest_semilightpaths(net, s, t, k=k)
        times.append(time.perf_counter() - start)
        assert len(paths) >= 1
    fit = fit_power_law(ks, times)
    report(
        "KSP: enumeration time vs K (n=48)",
        growth_table(ks, {"seconds": times}, x_name="K"),
    )
    # Roughly linear in K (spur work per accepted path); cap at quadratic.
    assert fit.exponent < 2.0

    result = benchmark(lambda: k_shortest_semilightpaths(net, s, t, k=4))
    benchmark.extra_info["fit_exponent"] = fit.exponent
    assert [p.total_cost for p in result] == sorted(p.total_cost for p in result)


@pytest.mark.parametrize("k", [1, 4])
def test_ksp_datapoints(benchmark, k):
    net = sparse_wan(32, seed=161)
    nodes = net.nodes()
    paths = benchmark(
        lambda: k_shortest_semilightpaths(net, nodes[0], nodes[-1], k=k)
    )
    assert paths[0].total_cost <= paths[-1].total_cost
