"""COR1 — all-pairs optimal semilightpaths via ``G_all``.

Claim (Corollary 1): all pairs in ``O(k²n² + kmn + kn²·log(kn))`` — i.e.
``n`` shortest-path trees over one shared ``G_all``, rather than ``n²``
independent single-pair queries.  We verify the shared-graph approach
beats rebuilding ``G_{s,t}`` per pair, and that its per-tree cost matches
the single-source run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.parallel import route_all_pairs_parallel
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from benchmarks.conftest import sparse_wan


def test_all_pairs_beats_pairwise_rebuilds(benchmark, report):
    net = sparse_wan(48, seed=12)
    router = LiangShenRouter(net)
    nodes = net.nodes()

    start = time.perf_counter()
    result = router.route_all_pairs()
    t_all = time.perf_counter() - start

    start = time.perf_counter()
    count = 0
    for s in nodes:
        for t in nodes:
            if s == t:
                continue
            try:
                router.route(s, t)
            except NoPathError:
                pass
            count += 1
    t_pairwise = time.perf_counter() - start

    report(
        "COR1: all-pairs strategies (n=48)",
        f"shared G_all + n trees: {t_all * 1e3:9.1f} ms\n"
        f"n^2 single-pair builds: {t_pairwise * 1e3:9.1f} ms "
        f"({count} queries)\n"
        f"advantage: {t_pairwise / t_all:.1f}x",
    )
    assert t_all < t_pairwise, "Corollary 1's strategy lost to naive pairwise"

    benchmark.extra_info["t_all_seconds"] = t_all
    benchmark.extra_info["t_pairwise_seconds"] = t_pairwise
    benchmark(lambda: router.route_tree(nodes[0]))


def test_all_pairs_worker_scaling(benchmark, report):
    """Serial vs process-parallel all-pairs over one shared ``G_all``.

    Always asserts result identity.  The speedup floor (2 workers must
    not lose to serial by more than fork overhead allows) is only
    meaningful with real parallelism, so it is skipped — not failed — on
    a 1-CPU box; ``os.cpu_count()`` is recorded alongside the table so a
    multi-core machine re-measures cleanly.
    """
    net = sparse_wan(48, seed=12)
    router = LiangShenRouter(net)
    aux = router.all_pairs_graph()

    timings: dict[int, float] = {}
    views: dict[int, dict] = {}
    for workers in (1, 2, 4):
        start = time.perf_counter()
        result = route_all_pairs_parallel(net, workers=workers, aux=aux)
        timings[workers] = time.perf_counter() - start
        views[workers] = {
            p: (v.hops, v.total_cost) for p, v in result.paths.items()
        }

    assert views[2] == views[1]
    assert views[4] == views[1]

    lines = [
        f"workers={w}: {timings[w] * 1e3:9.1f} ms "
        f"({timings[1] / timings[w]:.2f}x vs serial)"
        for w in sorted(timings)
    ]
    report(
        f"COR1: all-pairs worker scaling (n=48, {os.cpu_count()} CPUs)",
        "\n".join(lines),
    )
    for workers, seconds in timings.items():
        benchmark.extra_info[f"workers_{workers}_seconds"] = seconds
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark(lambda: route_all_pairs_parallel(net, workers=1, aux=aux))

    if (os.cpu_count() or 1) == 1:
        pytest.skip("speedup floor needs >1 CPU; identity already verified")
    # With real cores, 2 workers must at least roughly hold their own
    # against serial (generous floor: fork + shm-attach overhead).
    assert timings[2] < 2.0 * timings[1], (
        f"2-worker run lost badly to serial on a "
        f"{os.cpu_count()}-CPU box: {timings}"
    )


def test_all_pairs_results_complete(benchmark):
    """Every reachable ordered pair must be present and priced."""
    net = sparse_wan(32, seed=13)
    router = LiangShenRouter(net)
    result = benchmark(lambda: router.route_all_pairs())
    nodes = net.nodes()
    # Strongly connected generator: every ordered pair must be reachable.
    assert len(result.paths) == len(nodes) * (len(nodes) - 1)
    for path in list(result.paths.values())[:50]:
        assert path.evaluate_cost(net) == path.total_cost
