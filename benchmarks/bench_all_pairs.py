"""COR1 — all-pairs optimal semilightpaths via ``G_all``.

Claim (Corollary 1): all pairs in ``O(k²n² + kmn + kn²·log(kn))`` — i.e.
``n`` shortest-path trees over one shared ``G_all``, rather than ``n²``
independent single-pair queries.  We verify the shared-graph approach
beats rebuilding ``G_{s,t}`` per pair, and that its per-tree cost matches
the single-source run.
"""

from __future__ import annotations

import time

from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from benchmarks.conftest import sparse_wan


def test_all_pairs_beats_pairwise_rebuilds(benchmark, report):
    net = sparse_wan(48, seed=12)
    router = LiangShenRouter(net)
    nodes = net.nodes()

    start = time.perf_counter()
    result = router.route_all_pairs()
    t_all = time.perf_counter() - start

    start = time.perf_counter()
    count = 0
    for s in nodes:
        for t in nodes:
            if s == t:
                continue
            try:
                router.route(s, t)
            except NoPathError:
                pass
            count += 1
    t_pairwise = time.perf_counter() - start

    report(
        "COR1: all-pairs strategies (n=48)",
        f"shared G_all + n trees: {t_all * 1e3:9.1f} ms\n"
        f"n^2 single-pair builds: {t_pairwise * 1e3:9.1f} ms "
        f"({count} queries)\n"
        f"advantage: {t_pairwise / t_all:.1f}x",
    )
    assert t_all < t_pairwise, "Corollary 1's strategy lost to naive pairwise"

    benchmark.extra_info["t_all_seconds"] = t_all
    benchmark.extra_info["t_pairwise_seconds"] = t_pairwise
    benchmark(lambda: router.route_tree(nodes[0]))


def test_all_pairs_results_complete(benchmark):
    """Every reachable ordered pair must be present and priced."""
    net = sparse_wan(32, seed=13)
    router = LiangShenRouter(net)
    result = benchmark(lambda: router.route_all_pairs())
    nodes = net.nodes()
    # Strongly connected generator: every ordered pair must be reachable.
    assert len(result.paths) == len(nodes) * (len(nodes) - 1)
    for path in list(result.paths.values())[:50]:
        assert path.evaluate_cost(net) == path.total_cost
