"""THM4 — the restricted problem: running time independent of ``k``.

Claim (Theorem 4): with ``|Λ(e)| ≤ k₀`` the algorithm takes
``O(d²nk₀² + mk₀·log n)`` — "it is surprising to have found that the time
complexity for this case is independent of k".  We hold ``n, k₀`` fixed,
sweep the universe size ``k`` across two orders of magnitude, and require
the measured time to stay flat; then sweep ``k₀`` to see the quadratic
term move.
"""

from __future__ import annotations

import statistics
import time

from repro.analysis.complexity import fit_power_law, growth_table
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError
from benchmarks.conftest import restricted_wan


def _median_query_time(net, repeats: int = 5) -> float:
    nodes = net.nodes()
    router = LiangShenRouter(net)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for s, t in [(nodes[0], nodes[-1]), (nodes[1], nodes[len(nodes) // 2])]:
            try:
                router.route(s, t)
            except NoPathError:
                pass
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_time_independent_of_k(benchmark, report):
    n, k0 = 128, 3
    ks = [8, 32, 128, 512]
    times = [_median_query_time(restricted_wan(n, k, k0, seed=9)) for k in ks]
    fit = fit_power_law(ks, times)
    report(
        f"THM4: query time vs universe size k (n={n}, k0={k0})",
        growth_table(ks, {"seconds": times}, x_name="k"),
    )
    # Independence of k: fitted exponent ~0 (allow noise; ±0.25).
    assert abs(fit.exponent) < 0.25, (
        f"time depends on k with exponent {fit.exponent:.2f}"
    )
    # And the largest universe costs no more than ~1.5x the smallest.
    assert max(times) <= 1.6 * min(times)

    net = restricted_wan(n, 512, k0, seed=9)
    nodes = net.nodes()
    router = LiangShenRouter(net)
    benchmark(lambda: router.route(nodes[0], nodes[-1]))
    benchmark.extra_info["fit_exponent_k"] = fit.exponent
    benchmark.extra_info["times_vs_k"] = dict(zip(map(str, ks), times))


def test_time_grows_with_k0(benchmark, report):
    """The flip side: the d²nk₀² term makes k₀ the real knob."""
    n, k = 128, 64
    k0s = [1, 2, 4, 8]
    times = [_median_query_time(restricted_wan(n, k, k0, seed=10)) for k0 in k0s]
    report(
        f"THM4: query time vs per-link bound k0 (n={n}, k={k})",
        growth_table(k0s, {"seconds": times}, x_name="k0"),
    )
    assert times[-1] > times[0], "k0 had no effect at all"

    net = restricted_wan(n, k, 4, seed=10)
    nodes = net.nodes()
    router = LiangShenRouter(net)
    benchmark(lambda: router.route(nodes[0], nodes[-1]))
    benchmark.extra_info["times_vs_k0"] = dict(zip(map(str, k0s), times))


def test_auxiliary_size_independent_of_k(benchmark):
    """The mechanism behind Theorem 4: |V'| and |E'| are set by k₀, not k."""
    from repro.core.auxiliary import build_layered_graph

    n, k0 = 96, 2
    sizes = []
    for k in (8, 512):
        net = restricted_wan(n, k, k0, seed=11)
        sizes.append(build_layered_graph(net).sizes)
    small_k, big_k = sizes
    assert big_k.num_layer_nodes <= 2 * small_k.num_layer_nodes
    assert big_k.num_layer_edges <= 2 * small_k.num_layer_edges

    net = restricted_wan(n, 512, k0, seed=11)
    graph = benchmark(lambda: build_layered_graph(net))
    assert graph.sizes.within_bounds()
