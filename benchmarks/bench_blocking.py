"""RWA — the intro's motivating workload: dynamic provisioning blocking.

The paper motivates semilightpaths with on-line circuit switching where
"a single optical wavelength may not be available … because some of the
resources are already occupied".  This benchmark renders that motivation
quantitatively: blocking probability vs offered load on NSFNET for

* the optimal-semilightpath provisioner (this paper's router), and
* fixed shortest-path + first-fit wavelength, no conversion (the classic
  baseline),

on identical traffic traces.  Expected shape: the semilightpath policy
blocks no more at every load, with the gap widening in the mid-load
region where conversion rescues fragmented wavelengths.
"""

from __future__ import annotations

from repro.topology.reference import nsfnet_network
from repro.wdm.first_fit import FirstFitProvisioner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator

LOADS = [10.0, 20.0, 40.0, 60.0]
REQUESTS = 400


def _blocking(provisioner_factory, load, seed=23):
    net = nsfnet_network(num_wavelengths=4)
    trace = TrafficGenerator(net.nodes(), load, 1.0, seed=seed).generate(REQUESTS)
    stats = DynamicSimulation(provisioner_factory(net)).run(trace)
    return stats


def test_blocking_curve(benchmark, report):
    rows = []
    for load in LOADS:
        semilight = _blocking(SemilightpathProvisioner, load)
        first_fit = _blocking(FirstFitProvisioner, load)
        rows.append((load, semilight, first_fit))
        assert semilight.blocked <= first_fit.blocked, (
            f"optimal routing blocked more at load {load}"
        )
    table = "\n".join(
        f"load={load:5.1f}E  semilightpath={s.blocking_probability:6.3f} "
        f"(conv/conn={s.mean_conversions:4.2f})  "
        f"first-fit={f.blocking_probability:6.3f}"
        for load, s, f in rows
    )
    report("RWA: blocking probability vs offered load (NSFNET, k=4)", table)
    # Blocking must be monotone-ish in load for both policies.
    semis = [s.blocking_probability for _, s, _f in rows]
    assert semis[-1] >= semis[0]

    benchmark.extra_info["curve"] = [
        {
            "load": load,
            "semilightpath": s.blocking_probability,
            "first_fit": f.blocking_probability,
        }
        for load, s, f in rows
    ]
    net = nsfnet_network(num_wavelengths=4)
    trace = TrafficGenerator(net.nodes(), 40.0, 1.0, seed=23).generate(100)
    benchmark(lambda: DynamicSimulation(SemilightpathProvisioner(net)).run(trace))


def test_conversion_usage_rises_with_load(benchmark, report):
    """Under contention the router should lean on conversion more."""
    low = _blocking(SemilightpathProvisioner, 5.0)
    high = _blocking(SemilightpathProvisioner, 60.0)
    report(
        "RWA: conversions per admitted connection",
        f"load  5E: {low.mean_conversions:.3f}\n"
        f"load 60E: {high.mean_conversions:.3f}",
    )
    assert high.mean_conversions >= low.mean_conversions
    benchmark(lambda: _blocking(SemilightpathProvisioner, 30.0))
