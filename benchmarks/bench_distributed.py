"""THM3 / THM5 / COR2 — distributed complexities, measured exactly.

Claims:

* Theorem 3 — single pair: ``O(km)`` messages, ``O(kn)`` time (rounds).
* Theorem 5 — restricted: ``O(mk₀)`` messages, ``O(nk₀)`` rounds,
  independent of ``k``.
* Corollary 2 — all pairs: ``O(k²n²)`` messages (we run the n-source
  substitution documented in DESIGN.md).

The simulator counts every message on every physical link, so these are
exact measurements, not wall-clock proxies.
"""

from __future__ import annotations

from repro.analysis.complexity import growth_table
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError
from benchmarks.conftest import restricted_wan, sparse_wan


def _route(net, s=None, t=None):
    nodes = net.nodes()
    s = nodes[0] if s is None else s
    t = nodes[-1] if t is None else t
    return DistributedSemilightpathRouter(net).route(s, t)


def test_theorem3_message_and_round_bounds(benchmark, report):
    rows = []
    for n in (32, 64, 128):
        net = sparse_wan(n, seed=14)
        k, m = net.num_wavelengths, net.num_links
        result = _route(net)
        msgs, rounds = result.stats.total_messages, result.stats.rounds
        rows.append((n, k, m, msgs, k * m, rounds, k * n))
        # The constants: messages within a small multiple of km, rounds of kn.
        assert msgs <= 3 * k * m, f"messages {msgs} >> km = {k * m}"
        assert rounds <= k * n, f"rounds {rounds} > kn = {k * n}"
    table = "\n".join(
        f"n={n:4d} k={k} m={m:4d}  messages={msgs:6d} (km={km:5d})  "
        f"rounds={r:4d} (kn={kn:5d})"
        for n, k, m, msgs, km, r, kn in rows
    )
    report("THM3: distributed single-pair message/round counts", table)

    net = sparse_wan(64, seed=14)
    result = benchmark(lambda: _route(net))
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in rows]
    assert result.cost > 0


def test_theorem5_messages_independent_of_k(benchmark, report):
    n, k0 = 64, 3
    counts = []
    ks = [8, 64, 512]
    for k in ks:
        net = restricted_wan(n, k, k0, seed=15)
        try:
            result = _route(net)
        except NoPathError:
            counts.append(0)
            continue
        counts.append(result.stats.total_messages)
        m = net.num_links
        assert result.stats.total_messages <= 4 * m * k0
    report(
        f"THM5: messages vs k (n={n}, k0={k0})",
        growth_table(ks, {"messages": [float(c) for c in counts]}, x_name="k"),
    )
    positive = [c for c in counts if c]
    assert max(positive) <= 2 * min(positive), "message count grew with k"

    net = restricted_wan(n, 512, k0, seed=15)
    benchmark(lambda: _route(net))
    benchmark.extra_info["messages_vs_k"] = dict(zip(map(str, ks), counts))


def test_corollary2_all_pairs_messages(benchmark, report):
    """All-pairs via n single-source runs (DESIGN.md substitution for
    Haldar's algorithm): total messages must stay within O(k n · km),
    and we report how far below the Corollary 2 budget O(k²n²) it lands."""
    net = sparse_wan(24, seed=16)
    k, n, m = net.num_wavelengths, net.num_nodes, net.num_links
    router = DistributedSemilightpathRouter(net)
    total = 0
    for s in net.nodes():
        for t in net.nodes():
            if s == t:
                continue
            try:
                total += router.route(s, t).stats.total_messages
            except NoPathError:
                pass
    budget = (k * n) ** 2
    report(
        "COR2: all-pairs distributed messages",
        f"total messages (n^2 runs): {total}\n"
        f"corollary 2 budget (k n)^2: {budget}\n"
        f"utilization: {total / budget:.2f}",
    )
    # n^2 independent runs cost at most n * (per-source O(km)) each target.
    assert total <= n * n * 3 * k * m

    benchmark(lambda: router.route(net.nodes()[0], net.nodes()[-1]))
    benchmark.extra_info["total_messages"] = total
    benchmark.extra_info["budget"] = budget


def test_distributed_bellman_ford_baseline(benchmark):
    """Substrate datapoint: plain distributed BF on the physical graph."""
    from repro.distributed.bellman_ford_dist import DistributedBellmanFord

    net = sparse_wan(128, seed=17)
    triples = [
        (link.tail, link.head, min(link.costs.values()))
        for link in net.links()
        if link.costs
    ]
    bf = DistributedBellmanFord(net.nodes(), triples)
    dist, stats = benchmark(lambda: bf.run(net.nodes()[0]))
    assert stats.total_messages > 0
