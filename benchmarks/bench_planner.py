"""PLAN — ablation: static RWA ordering heuristics and restoration.

Extension experiments:

* carried circuits by demand ordering (shortest-first / longest-first /
  random-with-restarts) at tight capacity — the folklore is that ordering
  matters and restarts help;
* reactive restoration ratio after each possible single fiber cut on a
  loaded NSFNET.
"""

from __future__ import annotations

import itertools
import random

from repro.topology.reference import NSFNET_FIBERS, nsfnet_network
from repro.wdm.planner import Demand, StaticPlanner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.restoration import restore


def _demand_batch(net, count, seed=51):
    rng = random.Random(seed)
    pairs = list(itertools.permutations(net.nodes(), 2))
    return [
        Demand(s, t, count=rng.randint(1, 2)) for s, t in rng.sample(pairs, count)
    ]


def test_ordering_comparison(benchmark, report):
    net = nsfnet_network(num_wavelengths=3)
    demands = _demand_batch(net, 40)
    results = {}
    for ordering, restarts in [
        ("shortest-first", 1),
        ("longest-first", 1),
        ("random", 1),
        ("random", 8),
    ]:
        plan = StaticPlanner(net, ordering=ordering, restarts=restarts, seed=7).plan(
            demands
        )
        results[f"{ordering} (x{restarts})"] = plan
    table = "\n".join(
        f"{name:>22s}: carried={plan.circuits_carried:3d}/{plan.circuits_requested}"
        f"  cost={plan.total_cost:7.1f}"
        for name, plan in results.items()
    )
    report("PLAN: static RWA carried circuits by ordering (NSFNET, k=3)", table)

    multi = results["random (x8)"]
    single = results["random (x1)"]
    assert multi.circuits_carried >= single.circuits_carried
    for plan in results.values():
        assert 0 < plan.circuits_carried <= plan.circuits_requested

    benchmark.extra_info["carried"] = {
        name: plan.circuits_carried for name, plan in results.items()
    }
    benchmark(lambda: StaticPlanner(net, ordering="longest-first").plan(demands[:15]))


def test_single_cut_restoration_sweep(benchmark, report):
    """Cut every NSFNET fiber in turn against the same loaded network."""
    net = nsfnet_network(num_wavelengths=4)
    rng = random.Random(53)
    pairs = list(itertools.permutations(net.nodes(), 2))

    def loaded_provisioner():
        prov = SemilightpathProvisioner(net)
        for s, t in rng_sample:
            prov.try_establish(s, t)
        return prov

    rng_sample = rng.sample(pairs, 30)
    worst_ratio = 1.0
    total_affected = 0
    total_restored = 0
    for tail, head in NSFNET_FIBERS:
        prov = loaded_provisioner()
        restoration = restore(prov, tail, head)
        total_affected += len(restoration.affected)
        total_restored += len(restoration.restored)
        worst_ratio = min(worst_ratio, restoration.restoration_ratio)
    overall = total_restored / total_affected if total_affected else 1.0
    report(
        "PLAN: single-fiber-cut restoration sweep (NSFNET, k=4, 30 conns)",
        f"cuts simulated      : {len(NSFNET_FIBERS)}\n"
        f"connections affected: {total_affected}\n"
        f"restored            : {total_restored} ({overall:.0%})\n"
        f"worst single cut    : {worst_ratio:.0%}",
    )
    assert overall >= 0.7  # the mesh has enough spare capacity

    benchmark.extra_info["overall_restoration"] = overall
    prov = loaded_provisioner()
    benchmark(lambda: restore(prov, *NSFNET_FIBERS[0]))
