"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one experiment from DESIGN.md's index
(THM1, SEC3C, THM4, ...).  Benchmarks assert the *shape* of the paper's
claims (who wins, fitted exponents, flatness in ``k``) and attach the
measured tables to ``benchmark.extra_info`` so a
``pytest benchmarks/ --benchmark-only --benchmark-json=out.json`` run
leaves machine-readable results behind.
"""

from __future__ import annotations

import math

import pytest

from repro.core.conversion import FixedCostConversion
from repro.topology.generators import degree_bounded_network
from repro.topology.wavelength_assign import (
    bounded_random_wavelengths,
    random_wavelengths,
)


def sparse_wan(n: int, k: int | None = None, seed: int = 0, availability: float = 0.6):
    """The paper's regime: m = O(n), d <= 4, k = ceil(log2 n) by default."""
    if k is None:
        k = max(1, math.ceil(math.log2(n)))
    return degree_bounded_network(
        n,
        k,
        max_degree=4,
        seed=seed,
        wavelength_policy=random_wavelengths(k, availability=availability),
        conversion=FixedCostConversion(0.5),
    )


def restricted_wan(n: int, k: int, k0: int, seed: int = 0):
    """Section IV regime: huge universe k, at most k0 wavelengths per link."""
    return degree_bounded_network(
        n,
        k,
        max_degree=4,
        seed=seed,
        wavelength_policy=bounded_random_wavelengths(k, k0),
        conversion=FixedCostConversion(0.5),
    )


@pytest.fixture
def report(capsys):
    """Print a table so it survives pytest's capture when -s is passed."""

    def _print(title: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(text)

    return _print
