"""OBS15 — Observation 3's construction cost and Observations 1-5 sizes.

Claim: ``G'`` is built in ``O(k²n + km)`` time and space.  We time the
construction across an ``n`` sweep and emit the measured-vs-bound size
table for a batch of generators.
"""

from __future__ import annotations

import time

from repro.analysis.complexity import fit_power_law, growth_table
from repro.analysis.counting import measure_sizes
from repro.core.auxiliary import build_layered_graph, build_routing_graph
from benchmarks.conftest import sparse_wan


def test_construction_scaling(benchmark, report):
    ns = [64, 128, 256, 512]
    times = []
    for n in ns:
        net = sparse_wan(n, seed=4)
        start = time.perf_counter()
        build_layered_graph(net)
        times.append(time.perf_counter() - start)
    fit = fit_power_law(ns, times)
    report(
        "OBS15: G' construction time vs n (k = log2 n)",
        growth_table(ns, {"seconds": times}),
    )
    # O(k^2 n + km) with k = log n is n polylog n: comfortably subquadratic.
    assert fit.exponent < 1.8

    net = sparse_wan(256, seed=4)
    graph = benchmark(lambda: build_layered_graph(net))
    benchmark.extra_info["fit_exponent"] = fit.exponent
    assert graph.sizes.within_bounds()


def test_size_bounds_table(benchmark, report):
    """Emit the Observations 1-5 table for the benchmark topology."""
    net = sparse_wan(256, seed=5)
    srep = measure_sizes(net)
    report("OBS15: measured sizes vs paper bounds (n=256)", srep.format())
    assert srep.all_within
    result = benchmark(lambda: measure_sizes(net))
    assert result.all_within


def test_routing_graph_construction(benchmark):
    """G_{s,t} adds only 2 nodes and O(k) edges on top of G'."""
    net = sparse_wan(256, seed=6)
    nodes = net.nodes()
    base = build_layered_graph(net)
    aux = benchmark(lambda: build_routing_graph(net, nodes[0], nodes[-1]))
    assert aux.graph.num_nodes == base.graph.num_nodes + 2
    extra_edges = aux.graph.num_edges - base.graph.num_edges
    assert extra_edges <= 2 * net.num_wavelengths
